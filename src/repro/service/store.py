"""Content-addressed on-disk result store.

One directory, three sub-trees, all keyed by the spec fingerprint
(:func:`repro.api.fingerprint.fingerprint` — execution-stripped,
seed-inclusive):

====================  ==================================================
``results/<fp>.json``  completed envelope (tagged JSON via
                       :mod:`repro.api.serialize` — round-trips into a
                       live ``Result``/``SweepResult``)
``jobs/<fp>.json``     pending-job journal entry: the canonical spec
                       document of a submitted-but-unfinished job.  Its
                       existence is what lets a restarted daemon know
                       which jobs died with the process.
``ckpt/<fp>.*``        runtime checkpoints.  The store hands the runner
                       ``ckpt/<fp>`` as its ``Execution.checkpoint``
                       *prefix*; the runner derives one
                       ``<prefix>.<hash>.ckpt`` per stage under it, so a
                       resumed job finds exactly its own wave-boundary
                       state.
====================  ==================================================

Writes are atomic (temp file + ``os.replace``), so a reader — or a
daemon killed mid-write — never observes a torn document.  Storing a
result clears the job's journal entry and checkpoints in the same call:
the three trees never disagree about whether a fingerprint is done.
"""

from __future__ import annotations

import dataclasses
import glob
import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from repro.api.result import Result, SweepResult
from repro.api.serialize import dumps, loads

__all__ = ["ResultStore", "scrub_envelope"]


def scrub_envelope(envelope):
    """*envelope* with scheduling-dependent fields zeroed, for comparison.

    The store-key contract promises that a service envelope is
    bit-identical to a local run **up to scheduling metadata**: wall
    time varies per run, and ``runtime`` records how the run was
    scheduled (worker count, checkpoint resume) — legitimately different
    between a 1-worker local session and a resumed 8-worker service job
    that computed the very same numbers.  This helper zeroes exactly
    those fields (recursively through sweep points) so two envelopes can
    be compared with plain ``==`` on their serialized text.
    """
    if isinstance(envelope, SweepResult):
        return dataclasses.replace(
            envelope,
            points=tuple(scrub_envelope(p) for p in envelope.points),
            wall_time_s=0.0,
            runtime=None,
        )
    if isinstance(envelope, Result):
        return dataclasses.replace(envelope, wall_time_s=0.0, runtime=None)
    return envelope


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class ResultStore:
    """The content-addressed result/journal/checkpoint directory."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self._results = os.path.join(self.root, "results")
        self._jobs = os.path.join(self.root, "jobs")
        self._ckpt = os.path.join(self.root, "ckpt")
        for directory in (self._results, self._jobs, self._ckpt):
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Completed envelopes.
    # ------------------------------------------------------------------
    def result_path(self, fingerprint: str) -> str:
        return os.path.join(self._results, f"{fingerprint}.json")

    def has(self, fingerprint: str) -> bool:
        return os.path.exists(self.result_path(fingerprint))

    def get_text(self, fingerprint: str) -> Optional[str]:
        """The stored envelope's raw JSON text (``None`` if absent).

        The text is what the service's result endpoint streams verbatim
        — byte-equal for every fetch of the same fingerprint.
        """
        path = self.result_path(fingerprint)
        if not os.path.exists(path):
            return None
        with open(path) as handle:
            return handle.read()

    def get(self, fingerprint: str):
        """The stored envelope as a live ``Result``/``SweepResult``."""
        text = self.get_text(fingerprint)
        return None if text is None else loads(text)

    def put(self, fingerprint: str, envelope) -> str:
        """File a completed envelope and retire the job's working state.

        The journal entry and checkpoints exist to finish this exact
        computation; once the result is durable they are deleted in the
        same call, keeping the three trees consistent.
        """
        path = self.result_path(fingerprint)
        _atomic_write(path, dumps(envelope, indent=None))
        self.clear_journal(fingerprint)
        self.clear_checkpoints(fingerprint)
        return path

    # ------------------------------------------------------------------
    # Pending-job journal.
    # ------------------------------------------------------------------
    def journal_path(self, fingerprint: str) -> str:
        return os.path.join(self._jobs, f"{fingerprint}.json")

    def journal(self, fingerprint: str, document: Dict[str, Any]) -> None:
        """Record a submitted-but-unfinished job (its canonical spec doc)."""
        _atomic_write(
            self.journal_path(fingerprint),
            json.dumps(document, sort_keys=True),
        )

    def clear_journal(self, fingerprint: str) -> None:
        try:
            os.unlink(self.journal_path(fingerprint))
        except FileNotFoundError:
            pass

    def pending(self) -> Dict[str, Dict[str, Any]]:
        """``{fingerprint: journal document}`` of jobs that never finished.

        What :meth:`repro.service.jobs.JobRegistry.recover` replays on
        daemon start; the co-located checkpoints make the replay resume
        from wave boundaries instead of starting over.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for path in sorted(glob.glob(os.path.join(self._jobs, "*.json"))):
            fingerprint = os.path.splitext(os.path.basename(path))[0]
            with open(path) as handle:
                out[fingerprint] = json.load(handle)
        return out

    # ------------------------------------------------------------------
    # Co-located runtime checkpoints.
    # ------------------------------------------------------------------
    def checkpoint_prefix(self, fingerprint: str) -> str:
        """The ``Execution.checkpoint`` prefix for this fingerprint's job."""
        return os.path.join(self._ckpt, fingerprint)

    def checkpoints(self, fingerprint: str) -> List[str]:
        return sorted(glob.glob(self.checkpoint_prefix(fingerprint) + ".*.ckpt"))

    def clear_checkpoints(self, fingerprint: str) -> None:
        for path in self.checkpoints(fingerprint):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def fingerprints(self) -> List[str]:
        """Fingerprints with a completed envelope on disk."""
        return sorted(
            os.path.splitext(os.path.basename(p))[0]
            for p in glob.glob(os.path.join(self._results, "*.json"))
        )

    def stats(self) -> Dict[str, int]:
        return {
            "results": len(self.fingerprints()),
            "pending": len(glob.glob(os.path.join(self._jobs, "*.json"))),
            "checkpoints": len(glob.glob(os.path.join(self._ckpt, "*.ckpt"))),
        }
