"""Cell timing characterization against explicit loads.

The characterization testbench is the standard one: drive the cell's
switching input with a controlled-slew ramp, load the output with a pure
capacitance, and measure 50 %-to-50 % delay plus 20-80 % output
transition, for every (input slew, output load) grid point and both
edges.  Statistical characterization repeats the measurement under a
Monte-Carlo factory and streams the samples through the runtime's
:class:`~repro.runtime.accumulators.StreamStats` — the raw material for
SSTA (:mod:`repro.ssta`).

Which arcs a cell has, and how one grid point is measured, is the
business of a per-cell **arc adapter** (:mod:`repro.charlib.arcs`); this
module holds the measurement primitives, the :class:`CellTiming` table
container, and the serial nominal path (`characterize_arcs` /
`characterize_cell`).  The parallel grid workload lives in
:mod:`repro.charlib.workload` and runs through ``Session.run``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.delay import crossing_time, propagation_delay
from repro.cells.factory import DeviceFactory
from repro.cells.inverter import InverterSpec, _add_inverter
from repro.charlib.tables import LookupTable2D
from repro.circuit.dcop import initial_guess
from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.transient import transient
from repro.circuit.waveforms import Pulse
from repro.runtime.accumulators import StreamStats

#: Default characterization grids (40-nm scale).
DEFAULT_SLEWS = (4e-12, 12e-12, 30e-12)
DEFAULT_LOADS = (0.5e-15, 2e-15, 6e-15)


class CharacterizationError(RuntimeError):
    """A characterization point produced no valid measurement.

    Raised by the nominal paths when a threshold crossing is never
    found (the cell did not switch inside the observation window) —
    silently tabulating NaN or negative slews is exactly the failure
    mode this guards against.  Statistical runs instead drop invalid
    samples and record the counts as diagnostics in the
    :class:`~repro.api.result.Result` envelope.
    """


def build_loaded_inverter(
    factory: DeviceFactory,
    spec: InverterSpec,
    vdd: float,
    input_waveform,
    c_load: float,
) -> Tuple[Circuit, Dict[str, float]]:
    """Driver inverter with a pure capacitive load."""
    circuit = Circuit(title="INV_CL")
    circuit.add_vsource("vdd", GROUND, vdd, name="VDD")
    circuit.add_vsource("in", GROUND, input_waveform, name="VIN")
    _add_inverter(circuit, factory, spec, "in", "out", "drv")
    circuit.add_capacitor("out", GROUND, c_load, name="CL")
    factory.configure_circuit(circuit)
    return circuit, {"vdd": vdd, "out": vdd}


def output_slew(result, node: str, vdd: float, direction: str,
                t_min: float = 0.0):
    """20-80 % output transition time (batched).

    Samples whose thresholds are never crossed — or crossed in an order
    that would yield a non-positive transition (a stale crossing from an
    earlier edge) — come back NaN instead of a silently nonsensical
    value; callers either raise (:class:`CharacterizationError`, nominal
    paths) or drop-and-record (statistical paths).
    """
    lo, hi = 0.2 * vdd, 0.8 * vdd
    if direction == "rise":
        t_a = crossing_time(result.times, result[node], lo, "rise", t_min)
        t_b = crossing_time(result.times, result[node], hi, "rise", t_min)
    else:
        t_a = crossing_time(result.times, result[node], hi, "fall", t_min)
        t_b = crossing_time(result.times, result[node], lo, "fall", t_min)
    width = t_b - t_a
    return np.where(np.isfinite(width) & (width > 0.0), width, np.nan)


@dataclass(frozen=True)
class CellTiming:
    """NLDM-style tables for one cell.

    The mean tables (``delay``/``transition``) are keyed by arc name
    (``tphl``/``tplh`` for the combinational cells, ``tpcq_*`` for the
    flop).  Statistical characterization additionally fills the
    per-arc ``*_sigma`` tables.  ``arcs`` / ``liberty`` carry the
    adapter's Liberty metadata (group names, pins, function); both are
    optional so hand-built inverter-style timings keep working.
    """

    name: str
    vdd: float
    #: arc name -> mean delay table.
    delay: Dict[str, LookupTable2D]
    #: arc name -> mean output transition table.
    transition: Dict[str, LookupTable2D]
    #: arc name -> Monte-Carlo delay sigma table (None for nominal).
    delay_sigma: Optional[Dict[str, LookupTable2D]] = None
    #: arc name -> Monte-Carlo transition sigma table (None for nominal).
    transition_sigma: Optional[Dict[str, LookupTable2D]] = None
    #: Arc descriptors (``repro.charlib.arcs.Arc``) in table order;
    #: None -> the legacy inverter tphl/tplh mapping.
    arcs: Optional[tuple] = None
    #: Liberty cell metadata (``repro.charlib.arcs.LibertyCell``).
    liberty: Optional[object] = None
    #: Monte-Carlo samples behind the statistical tables (0 = nominal).
    n_mc: int = 0


def _measure_point(
    factory: DeviceFactory,
    spec: InverterSpec,
    vdd: float,
    slew_in: float,
    c_load: float,
    dt_factor: float = 25.0,
):
    """One inverter grid point: both edges' delay and output slew (batched)."""
    t_delay = 3.0 * slew_in + 10e-12
    width = max(12.0 * slew_in, 120e-12)
    pulse = Pulse(0.0, vdd, delay=t_delay, t_rise=slew_in, t_fall=slew_in,
                  width=width)
    circuit, hints = build_loaded_inverter(factory, spec, vdd, pulse, c_load)
    dt = max(min(slew_in / dt_factor, 1e-12), 0.2e-12)
    t_stop = t_delay + width + slew_in + max(width, 100e-12)
    result = transient(circuit, t_stop, dt,
                       dc_guess=initial_guess(circuit, hints))

    tphl = propagation_delay(result, "in", "out", vdd, input_edge="rise")
    fall_start = t_delay + slew_in + 0.5 * width
    tplh = propagation_delay(result, "in", "out", vdd, input_edge="fall",
                             t_min=fall_start)
    slew_hl = output_slew(result, "out", vdd, "fall")
    slew_lh = output_slew(result, "out", vdd, "rise", t_min=fall_start)
    return {
        "tphl": (tphl.delay, slew_hl),
        "tplh": (tplh.delay, slew_lh),
    }


def characterize_arcs(
    factory: DeviceFactory,
    adapter,
    vdd: float = 0.9,
    slews: Sequence[float] = DEFAULT_SLEWS,
    loads: Sequence[float] = DEFAULT_LOADS,
) -> CellTiming:
    """Nominal characterization of *adapter*'s arcs over the grid (serial).

    *adapter* is any :class:`repro.charlib.arcs.ArcAdapter`; the factory
    must be nominal (statistical grids run through the
    ``Characterize`` / ``CharacterizeLibrary`` specs and the parallel
    workload instead).  A grid point whose measurement is non-finite
    raises :class:`CharacterizationError` naming the arc and point.
    """
    if factory.batch_shape:
        raise ValueError(
            "characterize_arcs is the nominal path; run Monte-Carlo "
            "characterization through the Characterize spec"
        )
    slews = np.asarray(slews, dtype=float)
    loads = np.asarray(loads, dtype=float)
    arc_names = [arc.name for arc in adapter.arcs]
    delay_tables = {a: np.zeros((slews.size, loads.size)) for a in arc_names}
    tran_tables = {a: np.zeros((slews.size, loads.size)) for a in arc_names}

    for i, slew in enumerate(slews):
        for j, load in enumerate(loads):
            point = adapter.measure_point(factory, vdd, slew, load)
            for arc in arc_names:
                d, s = point[arc]
                d = float(np.asarray(d).squeeze())
                s = float(np.asarray(s).squeeze())
                if not (np.isfinite(d) and np.isfinite(s)):
                    raise CharacterizationError(
                        f"{adapter.name} arc {arc!r} never crossed its "
                        f"thresholds at slew={slew:.3g} s, load={load:.3g} F "
                        f"(delay={d}, transition={s})"
                    )
                delay_tables[arc][i, j] = d
                tran_tables[arc][i, j] = s

    return CellTiming(
        name=adapter.name,
        vdd=vdd,
        delay={
            a: LookupTable2D(slews, loads, delay_tables[a]) for a in arc_names
        },
        transition={
            a: LookupTable2D(slews, loads, tran_tables[a]) for a in arc_names
        },
        arcs=tuple(adapter.arcs),
        liberty=adapter.liberty,
    )


def characterize_cell(
    factory: DeviceFactory,
    spec: InverterSpec = InverterSpec(600.0, 300.0),
    vdd: float = 0.9,
    slews: Sequence[float] = DEFAULT_SLEWS,
    loads: Sequence[float] = DEFAULT_LOADS,
    name: str = "INV",
) -> CellTiming:
    """Nominal inverter characterization over the (slew, load) grid.

    Thin wrapper over :func:`characterize_arcs` with the inverter arc
    adapter — same measurement code as every other path, so the serial
    result is bit-identical to the sharded grid workload.
    """
    from repro.charlib.arcs import InverterArcs

    return characterize_arcs(
        factory, InverterArcs(spec=spec, name=name), vdd=vdd,
        slews=slews, loads=loads,
    )


# ----------------------------------------------------------------------
# Statistical arc samples (streamed moments).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArcSamples:
    """Monte-Carlo delay samples of one timing arc at one operating point.

    Moments are streamed through the runtime's
    :class:`~repro.runtime.accumulators.StreamStats` at construction —
    the same accumulator the sharded grid workload folds shard payloads
    into — so serial and parallel statistics share one formula.
    """

    cell: str
    arc: str
    slew_in: float
    c_load: float
    samples: np.ndarray       #: (n,) finite delay samples [s]

    def __post_init__(self):
        samples = np.asarray(self.samples, dtype=float).ravel()
        samples = samples[np.isfinite(samples)]
        object.__setattr__(self, "samples", samples)
        object.__setattr__(self, "_stats", StreamStats().update(samples))

    @property
    def edge(self) -> str:
        """Legacy alias of :attr:`arc`."""
        return self.arc

    @property
    def stats(self) -> StreamStats:
        """The streamed accumulator behind :attr:`mean`/:attr:`sigma`."""
        return self._stats

    @property
    def mean(self) -> float:
        return float(self._stats.mean) if self._stats.n else float("nan")

    @property
    def sigma(self) -> float:
        return self._stats.std()

    def draw(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Bootstrap-resample arc delays (preserves non-Gaussian shape)."""
        return rng.choice(self.samples, size=n, replace=True)


def characterize_cell_statistics(
    factory_builder: Callable[[], DeviceFactory],
    spec: InverterSpec = InverterSpec(600.0, 300.0),
    vdd: float = 0.9,
    slew_in: float = DEFAULT_SLEWS[1],
    c_load: float = DEFAULT_LOADS[1],
    name: str = "INV",
) -> Dict[str, ArcSamples]:
    """Monte-Carlo characterization of both inverter arcs at one point.

    *factory_builder* must return a fresh Monte-Carlo factory (its batch
    size sets the sample count); a builder rather than a factory so each
    arc gets independent device draws.  Grid-shaped statistical
    characterization — any cell, sharded — runs through the
    ``Characterize`` spec instead.
    """
    factory = factory_builder()
    point = _measure_point(factory, spec, vdd, slew_in, c_load)
    result = {}
    for edge in ("tphl", "tplh"):
        delays, _ = point[edge]
        result[edge] = ArcSamples(
            cell=name, arc=edge, slew_in=slew_in, c_load=c_load,
            samples=np.asarray(delays),
        )
    return result
