"""Cell timing characterization against explicit loads.

The characterization testbench is the standard one: drive the cell's
switching input with a controlled-slew ramp, load the output with a pure
capacitance, and measure 50 %-to-50 % delay plus 20-80 % output
transition, for every (input slew, output load) grid point and both
edges.  Statistical characterization repeats the measurement under a
Monte-Carlo factory and records the delay samples per arc — the raw
material for SSTA (:mod:`repro.ssta`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.analysis.delay import crossing_time, propagation_delay
from repro.cells.factory import DeviceFactory
from repro.cells.inverter import InverterSpec, _add_inverter
from repro.charlib.tables import LookupTable2D
from repro.circuit.dcop import initial_guess
from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.transient import transient
from repro.circuit.waveforms import Pulse

#: Default characterization grids (40-nm scale).
DEFAULT_SLEWS = (4e-12, 12e-12, 30e-12)
DEFAULT_LOADS = (0.5e-15, 2e-15, 6e-15)


def build_loaded_inverter(
    factory: DeviceFactory,
    spec: InverterSpec,
    vdd: float,
    input_waveform,
    c_load: float,
) -> Tuple[Circuit, Dict[str, float]]:
    """Driver inverter with a pure capacitive load."""
    circuit = Circuit(title="INV_CL")
    circuit.add_vsource("vdd", GROUND, vdd, name="VDD")
    circuit.add_vsource("in", GROUND, input_waveform, name="VIN")
    _add_inverter(circuit, factory, spec, "in", "out", "drv")
    circuit.add_capacitor("out", GROUND, c_load, name="CL")
    factory.configure_circuit(circuit)
    return circuit, {"vdd": vdd, "out": vdd}


def output_slew(result, node: str, vdd: float, direction: str,
                t_min: float = 0.0):
    """20-80 % output transition time (batched)."""
    lo, hi = 0.2 * vdd, 0.8 * vdd
    if direction == "rise":
        t_a = crossing_time(result.times, result[node], lo, "rise", t_min)
        t_b = crossing_time(result.times, result[node], hi, "rise", t_min)
    else:
        t_a = crossing_time(result.times, result[node], hi, "fall", t_min)
        t_b = crossing_time(result.times, result[node], lo, "fall", t_min)
    return t_b - t_a


@dataclass(frozen=True)
class CellTiming:
    """Nominal NLDM-style tables for one cell."""

    name: str
    vdd: float
    #: edge ("tphl"/"tplh") -> delay table.
    delay: Dict[str, LookupTable2D]
    #: edge -> output transition table.
    transition: Dict[str, LookupTable2D]


def _measure_point(
    factory: DeviceFactory,
    spec: InverterSpec,
    vdd: float,
    slew_in: float,
    c_load: float,
    dt_factor: float = 25.0,
):
    """One grid point: both edges' delay and output slew (batched)."""
    t_delay = 3.0 * slew_in + 10e-12
    width = max(12.0 * slew_in, 120e-12)
    pulse = Pulse(0.0, vdd, delay=t_delay, t_rise=slew_in, t_fall=slew_in,
                  width=width)
    circuit, hints = build_loaded_inverter(factory, spec, vdd, pulse, c_load)
    dt = max(min(slew_in / dt_factor, 1e-12), 0.2e-12)
    t_stop = t_delay + width + slew_in + max(width, 100e-12)
    result = transient(circuit, t_stop, dt,
                       dc_guess=initial_guess(circuit, hints))

    tphl = propagation_delay(result, "in", "out", vdd, input_edge="rise")
    fall_start = t_delay + slew_in + 0.5 * width
    tplh = propagation_delay(result, "in", "out", vdd, input_edge="fall",
                             t_min=fall_start)
    slew_hl = output_slew(result, "out", vdd, "fall")
    slew_lh = output_slew(result, "out", vdd, "rise", t_min=fall_start)
    return {
        "tphl": (tphl.delay, slew_hl),
        "tplh": (tplh.delay, slew_lh),
    }


def characterize_cell(
    factory: DeviceFactory,
    spec: InverterSpec = InverterSpec(600.0, 300.0),
    vdd: float = 0.9,
    slews: Sequence[float] = DEFAULT_SLEWS,
    loads: Sequence[float] = DEFAULT_LOADS,
    name: str = "INV",
) -> CellTiming:
    """Nominal characterization over the (slew, load) grid."""
    slews = np.asarray(slews, dtype=float)
    loads = np.asarray(loads, dtype=float)
    delay_tables = {e: np.zeros((slews.size, loads.size)) for e in ("tphl", "tplh")}
    tran_tables = {e: np.zeros((slews.size, loads.size)) for e in ("tphl", "tplh")}

    for i, slew in enumerate(slews):
        for j, load in enumerate(loads):
            point = _measure_point(factory, spec, vdd, slew, load)
            for edge in ("tphl", "tplh"):
                d, s = point[edge]
                delay_tables[edge][i, j] = float(np.asarray(d).squeeze())
                tran_tables[edge][i, j] = float(np.asarray(s).squeeze())

    return CellTiming(
        name=name,
        vdd=vdd,
        delay={
            e: LookupTable2D(slews, loads, delay_tables[e])
            for e in ("tphl", "tplh")
        },
        transition={
            e: LookupTable2D(slews, loads, tran_tables[e])
            for e in ("tphl", "tplh")
        },
    )


@dataclass(frozen=True)
class ArcStatistics:
    """Monte-Carlo delay samples of one timing arc at one operating point."""

    cell: str
    edge: str
    slew_in: float
    c_load: float
    samples: np.ndarray       #: (n,) delay samples [s]

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def sigma(self) -> float:
        return float(np.std(self.samples, ddof=1))

    def draw(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Bootstrap-resample arc delays (preserves non-Gaussian shape)."""
        return rng.choice(self.samples, size=n, replace=True)


def characterize_cell_statistics(
    factory_builder: Callable[[], DeviceFactory],
    spec: InverterSpec = InverterSpec(600.0, 300.0),
    vdd: float = 0.9,
    slew_in: float = DEFAULT_SLEWS[1],
    c_load: float = DEFAULT_LOADS[1],
    name: str = "INV",
) -> Dict[str, ArcStatistics]:
    """Monte-Carlo characterization of both arcs at one operating point.

    *factory_builder* must return a fresh Monte-Carlo factory (its batch
    size sets the sample count); a builder rather than a factory so each
    arc gets independent device draws.
    """
    factory = factory_builder()
    point = _measure_point(factory, spec, vdd, slew_in, c_load)
    result = {}
    for edge in ("tphl", "tplh"):
        delays, _ = point[edge]
        delays = np.asarray(delays)
        delays = delays[np.isfinite(delays)]
        result[edge] = ArcStatistics(
            cell=name, edge=edge, slew_in=slew_in, c_load=c_load,
            samples=delays,
        )
    return result
