"""Liberty (.lib) writer for characterized cells.

Emits the minimal NLDM structure downstream tools parse: per-arc
``cell_fall``/``cell_rise`` delay tables and ``fall_transition``/
``rise_transition`` tables over the characterized (slew, load) grid.
Units follow common 40-nm libraries: ns and pF.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.charlib.characterize import CellTiming
from repro.charlib.tables import LookupTable2D

_NS = 1e-9
_PF = 1e-12

#: Liberty group names per internal edge label (output falls on tphl).
_EDGE_GROUPS = {
    "tphl": ("cell_fall", "fall_transition"),
    "tplh": ("cell_rise", "rise_transition"),
}


def _format_axis(values: np.ndarray, scale: float) -> str:
    return ", ".join(f"{v / scale:.6g}" for v in values)


def _format_table(table: LookupTable2D, indent: str) -> str:
    lines = [f'{indent}index_1("{_format_axis(table.slews, _NS)}");',
             f'{indent}index_2("{_format_axis(table.loads, _PF)}");',
             f"{indent}values( \\"]
    for i, row in enumerate(table.values):
        row_text = ", ".join(f"{v / _NS:.6g}" for v in row)
        terminator = " \\" if i < table.values.shape[0] - 1 else ");"
        lines.append(f'{indent}  "{row_text}"{terminator}')
    return "\n".join(lines)


def write_liberty(
    cells: Sequence[CellTiming],
    library_name: str = "repro_vs_40nm",
) -> str:
    """Render a Liberty library string for *cells*.

    Each cell is emitted as a single-input inverting cell (the cells of
    this reproduction are INV-class drive characterizations); extending
    to multi-input cells only multiplies the pin groups.
    """
    if not cells:
        raise ValueError("need at least one characterized cell")
    out = [
        f"library ({library_name}) {{",
        '  delay_model : "table_lookup";',
        '  time_unit : "1ns";',
        '  capacitive_load_unit (1, pf);',
        f"  nom_voltage : {cells[0].vdd};",
    ]
    for cell in cells:
        out.append(f"  cell ({cell.name}) {{")
        out.append("    pin (A) { direction : input; }")
        out.append("    pin (Y) {")
        out.append("      direction : output;")
        out.append('      function : "(!A)";')
        out.append("      timing () {")
        out.append("        related_pin : \"A\";")
        out.append("        timing_sense : negative_unate;")
        for edge, (delay_group, tran_group) in _EDGE_GROUPS.items():
            out.append(f"        {delay_group} (delay_template) {{")
            out.append(_format_table(cell.delay[edge], "          "))
            out.append("        }")
            out.append(f"        {tran_group} (delay_template) {{")
            out.append(_format_table(cell.transition[edge], "          "))
            out.append("        }")
        out.append("      }")
        out.append("    }")
        out.append("  }")
    out.append("}")
    return "\n".join(out) + "\n"
