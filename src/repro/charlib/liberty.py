"""Liberty (.lib) writer + minimal reader for characterized cells.

Emits the minimal NLDM structure downstream tools parse: per-arc
``cell_fall``/``cell_rise`` delay tables and ``fall_transition``/
``rise_transition`` tables over the characterized (slew, load) grid.
Units follow common 40-nm libraries: ns and pF.

Multi-cell libraries use each :class:`CellTiming`'s adapter metadata
(``arcs`` for the group mapping, ``liberty`` for pins/function/
``timing_sense``/``timing_type``/``ff``); timings without metadata fall
back to the historical single-input inverting-cell rendering.
:func:`parse_liberty` reads the tables back (SI units restored) for
round-trip tests and table-driven consumers.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.charlib.characterize import CellTiming
from repro.charlib.tables import LookupTable2D

_NS = 1e-9
_PF = 1e-12

#: Legacy Liberty group names per internal edge label (output falls on
#: tphl) — used for timings carrying no adapter arc metadata.
_EDGE_GROUPS = {
    "tphl": ("cell_fall", "fall_transition"),
    "tplh": ("cell_rise", "rise_transition"),
}


def _format_axis(values: np.ndarray, scale: float) -> str:
    return ", ".join(f"{v / scale:.6g}" for v in values)


def _format_table(table: LookupTable2D, indent: str) -> str:
    lines = [f'{indent}index_1("{_format_axis(table.slews, _NS)}");',
             f'{indent}index_2("{_format_axis(table.loads, _PF)}");',
             f"{indent}values( \\"]
    for i, row in enumerate(table.values):
        row_text = ", ".join(f"{v / _NS:.6g}" for v in row)
        terminator = " \\" if i < table.values.shape[0] - 1 else ");"
        lines.append(f'{indent}  "{row_text}"{terminator}')
    return "\n".join(lines)


def _cell_groups(cell: CellTiming) -> List[Tuple[str, str, str]]:
    """(arc name, delay group, transition group) rows in emission order."""
    if cell.arcs:
        return [(a.name, a.delay_group, a.transition_group) for a in cell.arcs]
    return [(edge, groups[0], groups[1])
            for edge, groups in _EDGE_GROUPS.items() if edge in cell.delay]


def _emit_cell(out: List[str], cell: CellTiming) -> None:
    info = cell.liberty
    out.append(f"  cell ({cell.name}) {{")
    if info is None:
        # Historical single-input inverting-cell rendering.
        input_pins, output_pin = ("A",), "Y"
        function, related_pin = "(!A)", "A"
        timing_sense, timing_type, ff = "negative_unate", None, None
    else:
        input_pins, output_pin = info.input_pins, info.output_pin
        function, related_pin = info.function, info.related_pin
        timing_sense, timing_type, ff = (
            info.timing_sense, info.timing_type, info.ff
        )
    if ff is not None:
        next_state, clocked_on = ff
        out.append("    ff (IQ, IQN) {")
        out.append(f'      next_state : "{next_state}";')
        out.append(f'      clocked_on : "{clocked_on}";')
        out.append("    }")
    for pin in input_pins:
        out.append(f"    pin ({pin}) {{ direction : input; }}")
    out.append(f"    pin ({output_pin}) {{")
    out.append("      direction : output;")
    if function is not None:
        out.append(f'      function : "{function}";')
    out.append("      timing () {")
    out.append(f'        related_pin : "{related_pin}";')
    if timing_sense is not None:
        out.append(f"        timing_sense : {timing_sense};")
    if timing_type is not None:
        out.append(f"        timing_type : {timing_type};")
    for arc, delay_group, tran_group in _cell_groups(cell):
        out.append(f"        {delay_group} (delay_template) {{")
        out.append(_format_table(cell.delay[arc], "          "))
        out.append("        }")
        out.append(f"        {tran_group} (delay_template) {{")
        out.append(_format_table(cell.transition[arc], "          "))
        out.append("        }")
    out.append("      }")
    out.append("    }")
    out.append("  }")


def write_liberty(
    cells: Sequence[CellTiming],
    library_name: str = "repro_vs_40nm",
) -> str:
    """Render a Liberty library string for *cells*.

    Each cell's pin groups, output function and timing arcs follow its
    adapter metadata; a bare :class:`CellTiming` (no ``arcs`` /
    ``liberty``) is emitted as the historical single-input inverting
    cell.
    """
    if not cells:
        raise ValueError("need at least one characterized cell")
    out = [
        f"library ({library_name}) {{",
        '  delay_model : "table_lookup";',
        '  time_unit : "1ns";',
        '  capacitive_load_unit (1, pf);',
        f"  nom_voltage : {cells[0].vdd};",
    ]
    for cell in cells:
        _emit_cell(out, cell)
    out.append("}")
    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# Minimal reader (round-trip tests, table-driven consumers).
# ----------------------------------------------------------------------
_CELL_RE = re.compile(r"^cell \((\w+)\) \{")
_GROUP_RE = re.compile(r"^(\w+) \(delay_template\) \{")
_AXIS_RE = re.compile(r'^index_(1|2)\("([^"]*)"\);')
_ROW_RE = re.compile(r'"([^"]*)"')


def _floats(text: str) -> np.ndarray:
    return np.array([float(v) for v in text.split(",")], dtype=float)


def parse_liberty(text: str) -> Dict[str, Dict[str, LookupTable2D]]:
    """Parse tables written by :func:`write_liberty` back to SI units.

    Returns ``{cell_name: {group_name: LookupTable2D}}`` with slews and
    values converted from ns to seconds and loads from pF to farads.
    Only the table groups are interpreted; pin and attribute lines are
    skipped, so this is a reader for the writer above, not a general
    Liberty front end.
    """
    cells: Dict[str, Dict[str, LookupTable2D]] = {}
    cell = None
    group = None
    axes: Dict[str, np.ndarray] = {}
    rows: List[np.ndarray] = []
    in_values = False

    for raw in text.splitlines():
        line = raw.strip()
        m = _CELL_RE.match(line)
        if m:
            cell = m.group(1)
            cells[cell] = {}
            continue
        if cell is None:
            continue
        m = _GROUP_RE.match(line)
        if m:
            group = m.group(1)
            axes, rows, in_values = {}, [], False
            continue
        if group is None:
            continue
        m = _AXIS_RE.match(line)
        if m:
            scale = _NS if m.group(1) == "1" else _PF
            axes[m.group(1)] = _floats(m.group(2)) * scale
            continue
        if line.startswith("values("):
            in_values = True
            line = line[len("values("):]
        if in_values:
            m = _ROW_RE.search(line)
            if m:
                rows.append(_floats(m.group(1)) * _NS)
            if line.rstrip("\\").rstrip().endswith(");"):
                cells[cell][group] = LookupTable2D(
                    axes["1"], axes["2"], np.vstack(rows)
                )
                group, in_values = None, False
    return cells
