"""Per-cell arc adapters: what a cell's timing arcs are and how to
measure one (input slew, output load) grid point.

An :class:`ArcAdapter` is a frozen, picklable dataclass — the grid
workload (:mod:`repro.charlib.workload`) ships adapters to pool workers
as part of shard tasks — that declares

* the cell's timing :class:`Arc` set (internal arc name + the Liberty
  delay/transition group it lands in),
* the :class:`LibertyCell` pin/function metadata the writer needs, and
* ``measure_point(factory, vdd, slew_in, c_load)``: one testbench
  transient returning ``{arc_name: (delay, output_slew)}`` with the
  factory's batch shape (nominal scalars or Monte-Carlo vectors).

The built-in adapters cover the paper's benchmark cells: INV (the
legacy hard-wired path, bit-identical), NAND2 (worst-case A-input arc,
B held high) and the master-slave DFF (CK-falling-edge to Q arcs for
both captured data values).  ``get_adapter`` resolves the spec-level
cell names.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.delay import crossing_time
from repro.cells.dff import DFFSpec, build_dff
from repro.cells.factory import DeviceFactory
from repro.cells.inverter import InverterSpec
from repro.cells.nand import Nand2Spec
from repro.charlib.characterize import _measure_point, output_slew
from repro.circuit.dcop import initial_guess
from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.transient import transient
from repro.circuit.waveforms import DC, Pulse

__all__ = [
    "Arc",
    "LibertyCell",
    "ArcAdapter",
    "InverterArcs",
    "Nand2Arcs",
    "DFFArcs",
    "ADAPTERS",
    "get_adapter",
]


@dataclass(frozen=True)
class Arc:
    """One timing arc: internal name + its Liberty table groups."""

    name: str                 #: e.g. "tphl", "tpcq_lh"
    delay_group: str          #: "cell_fall" / "cell_rise"
    transition_group: str     #: "fall_transition" / "rise_transition"


@dataclass(frozen=True)
class LibertyCell:
    """Pin-level Liberty metadata of one characterized cell."""

    input_pins: Tuple[str, ...]
    output_pin: str
    #: Boolean function of the output (None for sequential cells).
    function: Optional[str]
    #: Input pin the timing group relates to.
    related_pin: str
    #: ``negative_unate`` etc. (None when ``timing_type`` applies).
    timing_sense: Optional[str] = "negative_unate"
    #: Edge-triggered arcs: ``falling_edge`` / ``rising_edge``.
    timing_type: Optional[str] = None
    #: Sequential cells: (next_state, clocked_on) of the ``ff`` group.
    ff: Optional[Tuple[str, str]] = None


class ArcAdapter(abc.ABC):
    """Protocol every per-cell adapter implements (frozen dataclass)."""

    name: str

    @property
    @abc.abstractmethod
    def arcs(self) -> Tuple[Arc, ...]:
        """The cell's timing arcs, in table order."""

    @property
    @abc.abstractmethod
    def liberty(self) -> LibertyCell:
        """Pin/function metadata for the Liberty writer."""

    @abc.abstractmethod
    def measure_point(
        self, factory: DeviceFactory, vdd: float, slew_in: float,
        c_load: float,
    ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Measure every arc at one grid point: ``{arc: (delay, slew)}``."""


_COMBINATIONAL_ARCS = (
    Arc("tphl", "cell_fall", "fall_transition"),
    Arc("tplh", "cell_rise", "rise_transition"),
)


@dataclass(frozen=True)
class InverterArcs(ArcAdapter):
    """The legacy hard-wired inverter testbench, as an adapter.

    ``measure_point`` delegates to the original ``_measure_point`` so
    every path — `characterize_cell`, the serial spec run, the sharded
    grid — produces bit-identical numbers.
    """

    spec: InverterSpec = InverterSpec(600.0, 300.0)
    name: str = "INV"

    @property
    def arcs(self) -> Tuple[Arc, ...]:
        return _COMBINATIONAL_ARCS

    @property
    def liberty(self) -> LibertyCell:
        return LibertyCell(
            input_pins=("A",), output_pin="Y", function="(!A)",
            related_pin="A", timing_sense="negative_unate",
        )

    def measure_point(self, factory, vdd, slew_in, c_load):
        return _measure_point(factory, self.spec, vdd, slew_in, c_load)


@dataclass(frozen=True)
class Nand2Arcs(ArcAdapter):
    """NAND2 worst-case single-input arc: A switches, B held high.

    Same testbench scheme as the inverter — controlled-slew ramp on A,
    pure capacitive load on the output — with the observation windows
    stretched ``(0.9 / vdd)**2`` like :func:`repro.cells.nand.
    nand2_delays`, so low-supply grids still capture their crossings.
    """

    spec: Nand2Spec = Nand2Spec()
    name: str = "NAND2"

    @property
    def arcs(self) -> Tuple[Arc, ...]:
        return _COMBINATIONAL_ARCS

    @property
    def liberty(self) -> LibertyCell:
        return LibertyCell(
            input_pins=("A", "B"), output_pin="Y", function="(!(A&B))",
            related_pin="A", timing_sense="negative_unate",
        )

    def measure_point(self, factory, vdd, slew_in, c_load):
        stretch = (0.9 / vdd) ** 2
        t_delay = 3.0 * slew_in + 10e-12 * stretch
        width = max(12.0 * slew_in, 120e-12 * stretch)
        pulse = Pulse(0.0, vdd, delay=t_delay, t_rise=slew_in,
                      t_fall=slew_in, width=width)

        circuit = Circuit(title="NAND2_CL")
        circuit.add_vsource("vdd", GROUND, DC(vdd), name="VDD")
        circuit.add_vsource("a", GROUND, pulse, name="VA")
        circuit.add_vsource("b", GROUND, DC(vdd), name="VB")
        spec = self.spec
        circuit.add_mosfet(factory("pmos", spec.wp_nm, spec.l_nm),
                           d="out", g="a", s="vdd", name="MPA")
        circuit.add_mosfet(factory("pmos", spec.wp_nm, spec.l_nm),
                           d="out", g="b", s="vdd", name="MPB")
        circuit.add_mosfet(factory("nmos", spec.wn_nm, spec.l_nm),
                           d="out", g="a", s="mid", name="MNA")
        circuit.add_mosfet(factory("nmos", spec.wn_nm, spec.l_nm),
                           d="mid", g="b", s=GROUND, name="MNB")
        circuit.add_capacitor("out", GROUND, c_load, name="CL")
        factory.configure_circuit(circuit)
        hints = {"vdd": vdd, "out": vdd, "mid": 0.0}

        dt = max(min(slew_in / 25.0, 1e-12 * stretch), 0.2e-12)
        t_stop = t_delay + width + slew_in + max(width, 100e-12 * stretch)
        result = transient(circuit, t_stop, dt,
                           dc_guess=initial_guess(circuit, hints))

        from repro.analysis.delay import propagation_delay

        tphl = propagation_delay(result, "a", "out", vdd, input_edge="rise")
        fall_start = t_delay + slew_in + 0.5 * width
        tplh = propagation_delay(result, "a", "out", vdd, input_edge="fall",
                                 t_min=fall_start)
        slew_hl = output_slew(result, "out", vdd, "fall")
        slew_lh = output_slew(result, "out", vdd, "rise", t_min=fall_start)
        return {
            "tphl": (tphl.delay, slew_hl),
            "tplh": (tplh.delay, slew_lh),
        }


@dataclass(frozen=True)
class DFFArcs(ArcAdapter):
    """Master-slave DFF clock-to-Q arcs at the capturing (falling) edge.

    Two transients per grid point, one per captured data value: D held
    high (slave releases a 0, Q rises — ``tpcq_lh``) and D held low with
    the slave holding 1 (Q falls — ``tpcq_hl``).  The "input slew" of
    the grid is the clock edge time; delay is measured from the clock's
    50 % falling crossing to Q's 50 % crossing, with the load capacitor
    on Q.
    """

    spec: DFFSpec = DFFSpec()
    name: str = "DFF"

    @property
    def arcs(self) -> Tuple[Arc, ...]:
        return (
            Arc("tpcq_lh", "cell_rise", "rise_transition"),
            Arc("tpcq_hl", "cell_fall", "fall_transition"),
        )

    @property
    def liberty(self) -> LibertyCell:
        return LibertyCell(
            input_pins=("D", "CK"), output_pin="Q", function=None,
            related_pin="CK", timing_sense=None, timing_type="falling_edge",
            ff=("D", "(!CK)"),
        )

    def _capture(self, factory, vdd, slew_in, c_load, d_high: bool):
        """One capture transient: (clk->q delay, q transition)."""
        stretch = (0.9 / vdd) ** 2
        t_clk = 3.0 * slew_in + 20e-12 * stretch
        t_stop = t_clk + slew_in + max(12.0 * slew_in, 200e-12 * stretch)

        clk = Pulse(vdd, 0.0, delay=t_clk, t_rise=slew_in, t_fall=slew_in,
                    width=4.0 * t_stop)
        clkb = Pulse(0.0, vdd, delay=t_clk, t_rise=slew_in, t_fall=slew_in,
                     width=4.0 * t_stop)
        d_wave = DC(vdd if d_high else 0.0)
        circuit, hints = build_dff(factory, self.spec, vdd, d_wave, clk, clkb)
        circuit.add_capacitor("q", GROUND, c_load, name="CLQ")
        if d_high:
            # Master transparent on 1; slave still holding 0 (build_dff's
            # default hints assume D low, so flip the master nodes only).
            hints.update({"x": vdd, "y": 0.0, "z": vdd})
        else:
            # Master transparent on 0 (the default); slave holding 1.
            hints.update({"u": 0.0, "q": vdd, "v": 0.0})
        guess = initial_guess(circuit, hints)

        dt = max(min(slew_in / 25.0, 1e-12 * stretch), 0.2e-12)
        result = transient(circuit, t_stop, dt, dc_guess=guess)

        t_ck = crossing_time(result.times, result["clk"], 0.5 * vdd, "fall")
        q_dir = "rise" if d_high else "fall"
        t_q = crossing_time(result.times, result["q"], 0.5 * vdd, q_dir,
                            t_min=t_clk)
        delay = t_q - t_ck
        slew = output_slew(result, "q", vdd, q_dir, t_min=t_clk)
        return delay, slew

    def measure_point(self, factory, vdd, slew_in, c_load):
        d_lh, s_lh = self._capture(factory, vdd, slew_in, c_load, d_high=True)
        d_hl, s_hl = self._capture(factory, vdd, slew_in, c_load, d_high=False)
        return {
            "tpcq_lh": (d_lh, s_lh),
            "tpcq_hl": (d_hl, s_hl),
        }


#: Spec-level cell names -> default adapter builders.
ADAPTERS = {
    "inv": InverterArcs,
    "nand2": Nand2Arcs,
    "dff": DFFArcs,
}


def get_adapter(cell) -> ArcAdapter:
    """Resolve a spec-level cell name (or pass an adapter through)."""
    if isinstance(cell, ArcAdapter):
        return cell
    try:
        return ADAPTERS[cell]()
    except KeyError:
        known = ", ".join(sorted(ADAPTERS))
        raise ValueError(f"unknown cell {cell!r}; known cells: {known}") from None
