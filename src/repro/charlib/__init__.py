"""Standard-cell timing characterization (NLDM-style tables + statistics).

Layers: :mod:`~repro.charlib.tables` (bilinear lookup tables),
:mod:`~repro.charlib.characterize` (measurement primitives, serial
nominal path, streamed arc statistics), :mod:`~repro.charlib.arcs`
(per-cell arc adapters: INV/NAND2/DFF), :mod:`~repro.charlib.workload`
(the sharded grid workload behind the ``Characterize`` /
``CharacterizeLibrary`` specs), and :mod:`~repro.charlib.liberty`
(Liberty writer + reader).
"""

from repro.charlib.tables import LookupTable2D
from repro.charlib.characterize import (
    ArcSamples,
    CellTiming,
    CharacterizationError,
    characterize_arcs,
    characterize_cell,
    characterize_cell_statistics,
)
from repro.charlib.arcs import (
    ADAPTERS,
    Arc,
    ArcAdapter,
    DFFArcs,
    InverterArcs,
    LibertyCell,
    Nand2Arcs,
    get_adapter,
)
from repro.charlib.workload import (
    ArcPointStats,
    CharGridTask,
    GridPointResult,
    LibraryTiming,
    assemble_library,
    run_characterization,
)
from repro.charlib.liberty import parse_liberty, write_liberty

__all__ = [
    "LookupTable2D",
    "CellTiming",
    "CharacterizationError",
    "ArcSamples",
    "characterize_arcs",
    "characterize_cell",
    "characterize_cell_statistics",
    "Arc",
    "ArcAdapter",
    "LibertyCell",
    "InverterArcs",
    "Nand2Arcs",
    "DFFArcs",
    "ADAPTERS",
    "get_adapter",
    "ArcPointStats",
    "GridPointResult",
    "CharGridTask",
    "LibraryTiming",
    "run_characterization",
    "assemble_library",
    "parse_liberty",
    "write_liberty",
]
