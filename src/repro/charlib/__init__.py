"""Standard-cell timing characterization (NLDM-style tables + statistics)."""

from repro.charlib.tables import LookupTable2D
from repro.charlib.characterize import (
    ArcStatistics,
    CellTiming,
    characterize_cell,
    characterize_cell_statistics,
)
from repro.charlib.liberty import write_liberty

__all__ = [
    "LookupTable2D",
    "CellTiming",
    "ArcStatistics",
    "characterize_cell",
    "characterize_cell_statistics",
    "write_liberty",
]
