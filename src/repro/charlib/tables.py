"""2-D lookup tables, NLDM style.

Liberty-format delay models tabulate each timing arc's delay and output
transition over (input slew, output load); tools interpolate bilinearly.
This is the exact structure we build from the batched engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _axis_segment(axis: np.ndarray, query: np.ndarray):
    """Lower segment index + interpolation fraction along one axis.

    A single-point axis is constant along that dimension: every query
    maps to index 0 with fraction 0 (no division by the zero-length
    segment).
    """
    query = np.asarray(query, dtype=float)
    if axis.size == 1:
        zeros = np.zeros(query.shape, dtype=int)
        return zeros, np.zeros(query.shape)
    i = np.clip(np.searchsorted(axis, query) - 1, 0, axis.size - 2)
    x0, x1 = axis[i], axis[i + 1]
    frac = np.clip((query - x0) / (x1 - x0), 0.0, 1.0)
    return i, frac


@dataclass(frozen=True)
class LookupTable2D:
    """Bilinear-interpolated table over (input slew, output load)."""

    slews: np.ndarray        #: (S,) input transition times [s], increasing
    loads: np.ndarray        #: (L,) output load capacitances [F], increasing
    values: np.ndarray       #: (S, L) tabulated quantity

    def __post_init__(self):
        slews = np.asarray(self.slews, dtype=float)
        loads = np.asarray(self.loads, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if slews.ndim != 1 or loads.ndim != 1:
            raise ValueError("axes must be 1-D")
        if slews.size == 0 or loads.size == 0:
            raise ValueError("axes must hold at least one point")
        if values.shape != (slews.size, loads.size):
            raise ValueError(
                f"values shape {values.shape} does not match axes "
                f"({slews.size}, {loads.size})"
            )
        if np.any(np.diff(slews) <= 0.0) or np.any(np.diff(loads) <= 0.0):
            raise ValueError("axes must be strictly increasing")
        object.__setattr__(self, "slews", slews)
        object.__setattr__(self, "loads", loads)
        object.__setattr__(self, "values", values)

    def __call__(self, slew, load):
        """Bilinear interpolation (clamped at the table edges).

        Single-point axes are handled as constants along that axis, so
        1 x L, S x 1 and 1 x 1 tables interpolate (or simply clamp)
        without dividing by a degenerate segment.
        """
        i, fs = _axis_segment(self.slews, slew)
        j, fl = _axis_segment(self.loads, load)
        i1 = np.minimum(i + 1, self.slews.size - 1)
        j1 = np.minimum(j + 1, self.loads.size - 1)

        v00 = self.values[i, j]
        v01 = self.values[i, j1]
        v10 = self.values[i1, j]
        v11 = self.values[i1, j1]
        return (
            v00 * (1 - fs) * (1 - fl)
            + v01 * (1 - fs) * fl
            + v10 * fs * (1 - fl)
            + v11 * fs * fl
        )

    @property
    def shape(self):
        return self.values.shape
