"""2-D lookup tables, NLDM style.

Liberty-format delay models tabulate each timing arc's delay and output
transition over (input slew, output load); tools interpolate bilinearly.
This is the exact structure we build from the batched engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LookupTable2D:
    """Bilinear-interpolated table over (input slew, output load)."""

    slews: np.ndarray        #: (S,) input transition times [s], increasing
    loads: np.ndarray        #: (L,) output load capacitances [F], increasing
    values: np.ndarray       #: (S, L) tabulated quantity

    def __post_init__(self):
        slews = np.asarray(self.slews, dtype=float)
        loads = np.asarray(self.loads, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if slews.ndim != 1 or loads.ndim != 1:
            raise ValueError("axes must be 1-D")
        if values.shape != (slews.size, loads.size):
            raise ValueError(
                f"values shape {values.shape} does not match axes "
                f"({slews.size}, {loads.size})"
            )
        if np.any(np.diff(slews) <= 0.0) or np.any(np.diff(loads) <= 0.0):
            raise ValueError("axes must be strictly increasing")
        object.__setattr__(self, "slews", slews)
        object.__setattr__(self, "loads", loads)
        object.__setattr__(self, "values", values)

    def __call__(self, slew, load):
        """Bilinear interpolation (clamped at the table edges)."""
        slew = np.asarray(slew, dtype=float)
        load = np.asarray(load, dtype=float)

        i = np.clip(np.searchsorted(self.slews, slew) - 1, 0,
                    self.slews.size - 2)
        j = np.clip(np.searchsorted(self.loads, load) - 1, 0,
                    self.loads.size - 2)
        s0, s1 = self.slews[i], self.slews[i + 1]
        l0, l1 = self.loads[j], self.loads[j + 1]
        fs = np.clip((slew - s0) / (s1 - s0), 0.0, 1.0)
        fl = np.clip((load - l0) / (l1 - l0), 0.0, 1.0)

        v00 = self.values[i, j]
        v01 = self.values[i, j + 1]
        v10 = self.values[i + 1, j]
        v11 = self.values[i + 1, j + 1]
        return (
            v00 * (1 - fs) * (1 - fl)
            + v01 * (1 - fs) * fl
            + v10 * fs * (1 - fl)
            + v11 * fs * fl
        )

    @property
    def shape(self):
        return self.values.shape
