"""Library characterization as a sharded grid workload.

The characterization grid — every (cell, input slew, output load) point
of a ``Characterize`` / ``CharacterizeLibrary`` spec — is embarrassingly
parallel: each point is one independent testbench transient.  This
module turns the grid into the runtime's vocabulary:

* :class:`CharGridTask` is the picklable shard task.  Grid points are
  enumerated in row-major ``(cell, slew, load)`` order; a shard covers a
  contiguous flat-index range and evaluates its points one by one.

* **Grid-point seed contract** (ROADMAP "Conventions (PR 4)"): point
  *k*'s Monte-Carlo factory draws from
  ``SeedSequence(base_seed, spawn_key=(k,))`` — the runtime's shard
  derivation applied to *grid-point* indices, not shard indices.  The
  tables are therefore a pure function of ``(session seed,
  seed_offset)`` alone: worker count, shard size and completion order
  cannot move a single bit.  (Shard size only changes scheduling
  granularity, which is one notch stronger than the sample-shard
  contract of PR 3.)

* Per-point statistics are folded through the runtime's
  :class:`~repro.runtime.accumulators.StreamStats` — mean/sigma of each
  arc's delay and output transition over the Monte-Carlo axis, with
  non-finite samples dropped and counted as diagnostics.

:func:`run_characterization` is the orchestration entry ``Session.run``
uses; :func:`assemble_library` folds the ordered point results into
:class:`~repro.charlib.characterize.CellTiming` tables and a
:class:`LibraryTiming`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.charlib.characterize import (
    CellTiming,
    CharacterizationError,
)
from repro.charlib.tables import LookupTable2D
from repro.runtime.accumulators import StreamStats
from repro.runtime.runner import run_sharded
from repro.runtime.sharding import plan_shards, shard_rng

__all__ = [
    "ArcPointStats",
    "GridPointResult",
    "CharGridTask",
    "LibraryTiming",
    "run_characterization",
    "assemble_library",
]


@dataclass(frozen=True)
class ArcPointStats:
    """Streamed statistics of one arc at one grid point."""

    delay_mean: float
    delay_sigma: float          #: NaN for nominal / single-sample points
    transition_mean: float
    transition_sigma: float
    n_valid: int                #: finite (delay, transition) sample pairs
    n_total: int


@dataclass(frozen=True)
class GridPointResult:
    """One evaluated grid point: every arc of one cell at one (slew, load)."""

    cell_index: int
    i_slew: int
    j_load: int
    #: ``(arc_name, stats)`` pairs in the adapter's arc order.
    arcs: Tuple[Tuple[str, ArcPointStats], ...]


def _point_stats(delays, transitions) -> ArcPointStats:
    """Fold one arc's point samples through StreamStats accumulators."""
    delays = np.atleast_1d(np.asarray(delays, dtype=float)).ravel()
    transitions = np.atleast_1d(np.asarray(transitions, dtype=float)).ravel()
    valid = np.isfinite(delays) & np.isfinite(transitions)
    d_stats = StreamStats().update(delays[valid])
    t_stats = StreamStats().update(transitions[valid])
    nan = float("nan")
    return ArcPointStats(
        delay_mean=float(d_stats.mean) if d_stats.n else nan,
        delay_sigma=d_stats.std(),
        transition_mean=float(t_stats.mean) if t_stats.n else nan,
        transition_sigma=t_stats.std(),
        n_valid=int(d_stats.n),
        n_total=int(delays.size),
    )


@dataclass(frozen=True)
class CharGridTask:
    """Picklable shard task over the flat (cell, slew, load) grid.

    ``n_mc == 0`` characterizes nominally (no random stream at all);
    otherwise each point builds a fresh Monte-Carlo factory on its own
    grid-point stream (see the module docstring's seed contract).
    """

    technology: object              #: Technology
    adapters: Tuple                 #: per-cell ArcAdapter instances
    vdd: float
    slews: Tuple[float, ...]
    loads: Tuple[float, ...]
    n_mc: int = 0
    model: str = "vs"
    base_seed: int = 0
    backend: Optional[str] = None
    #: Enclosing sweep-point indices: under sweep point *j* grid point
    #: *k* draws from ``SeedSequence(base_seed, spawn_key=(j, k))`` —
    #: the nested sweep/seed contract.
    spawn_prefix: Tuple[int, ...] = ()

    @property
    def points_per_cell(self) -> int:
        return len(self.slews) * len(self.loads)

    @property
    def n_points(self) -> int:
        return len(self.adapters) * self.points_per_cell

    def _factory(self, point_index: int):
        from repro.cells.factory import (
            MonteCarloDeviceFactory,
            NominalDeviceFactory,
        )
        from repro.runtime.tasks import _process_plan_cache

        if self.n_mc:
            factory = MonteCarloDeviceFactory(
                self.technology, self.n_mc,
                rng=shard_rng(self.base_seed, point_index,
                              self.spawn_prefix),
                model=self.model,
            )
        else:
            factory = NominalDeviceFactory(self.technology, self.model)
        factory.plan_cache = _process_plan_cache()
        if self.backend is not None:
            factory.backend = self.backend
        return factory

    def measure_index(self, point_index: int) -> GridPointResult:
        """Evaluate flat grid point *point_index* (any process, any order)."""
        cell_index, rest = divmod(point_index, self.points_per_cell)
        i_slew, j_load = divmod(rest, len(self.loads))
        adapter = self.adapters[cell_index]
        factory = self._factory(point_index)
        point = adapter.measure_point(
            factory, self.vdd, self.slews[i_slew], self.loads[j_load]
        )
        arcs = []
        for arc in adapter.arcs:
            delays, transitions = point[arc.name]
            stats = _point_stats(delays, transitions)
            if self.n_mc == 0 and stats.n_valid == 0:
                raise CharacterizationError(
                    f"{adapter.name} arc {arc.name!r} never crossed its "
                    f"thresholds at slew={self.slews[i_slew]:.3g} s, "
                    f"load={self.loads[j_load]:.3g} F"
                )
            arcs.append((arc.name, stats))
        return GridPointResult(
            cell_index=cell_index, i_slew=i_slew, j_load=j_load,
            arcs=tuple(arcs),
        )

    def __call__(self, shard) -> Tuple[GridPointResult, ...]:
        """Runtime protocol: evaluate the shard's contiguous point range."""
        return tuple(
            self.measure_index(k) for k in range(shard.start, shard.stop)
        )


@dataclass(frozen=True)
class LibraryTiming:
    """A characterized multi-cell library (the spec payload)."""

    name: str
    vdd: float
    cells: Tuple[CellTiming, ...]
    slews: Tuple[float, ...]
    loads: Tuple[float, ...]
    n_mc: int = 0

    def cell(self, name: str) -> CellTiming:
        for cell in self.cells:
            if cell.name == name:
                return cell
        known = ", ".join(c.name for c in self.cells)
        raise KeyError(f"no cell {name!r} in library (have: {known})")

    def liberty(self, library_name: Optional[str] = None) -> str:
        """Render the library as Liberty text."""
        from repro.charlib.liberty import write_liberty

        return write_liberty(self.cells, library_name=library_name or self.name)


def run_characterization(task: CharGridTask, execution=None, executor=None,
                         observer=None):
    """Evaluate the whole grid, serially or through the sharded runtime.

    ``execution=None`` walks the flat grid in index order in-process —
    and because every point owns its stream, the result is bit-identical
    to any sharded run.  With execution options, grid points fan out as
    shards of ``execution.shard_size`` points each (default 1: one
    transient per shard task).  Adaptive stopping / checkpointing do not
    apply to a fixed grid and are ignored.  *observer* (a
    :class:`~repro.runtime.runner.RunObserver`) sees per-point progress
    on the serial walk and per-wave progress on the sharded one.

    Returns ``(points, RuntimeInfo-or-None)`` with *points* in flat grid
    order.
    """
    if execution is None:
        points = []
        if observer is not None:
            observer.on_progress(0, task.n_points, None)
        for k in range(task.n_points):
            points.append(task.measure_index(k))
            if observer is not None:
                observer.on_progress(k + 1, task.n_points, None)
        return points, None

    shard_size = getattr(execution, "shard_size", None) or 1
    plan = plan_shards(task.n_points, shard_size, task.base_seed,
                       spawn_prefix=task.spawn_prefix)
    if executor is None:
        from repro.runtime.executors import resolve_executor

        executor = resolve_executor(getattr(execution, "workers", 1))
    run = run_sharded(task, plan, executor, observer=observer)
    points = [point for payload in run.payloads for point in payload]
    return points, run.info


def assemble_library(
    task: CharGridTask,
    points: Sequence[GridPointResult],
    name: str = "repro_vs_40nm",
):
    """Fold ordered grid points into tables; returns (library, diagnostics).

    Diagnostics map ``"CELL.arc"`` to the dropped-sample accounting of
    every grid point that lost non-finite Monte-Carlo samples — the
    record the Result envelope carries per the fail-loudly policy.
    """
    slews = np.asarray(task.slews, dtype=float)
    loads = np.asarray(task.loads, dtype=float)
    statistical = task.n_mc > 0

    cells: List[CellTiming] = []
    diagnostics: Dict[str, Dict] = {}
    for cell_index, adapter in enumerate(task.adapters):
        arc_names = [arc.name for arc in adapter.arcs]
        shape = (slews.size, loads.size)
        tables = {
            kind: {a: np.full(shape, np.nan) for a in arc_names}
            for kind in ("delay", "tran", "delay_sigma", "tran_sigma")
        }
        for point in points:
            if point.cell_index != cell_index:
                continue
            i, j = point.i_slew, point.j_load
            for arc_name, stats in point.arcs:
                tables["delay"][arc_name][i, j] = stats.delay_mean
                tables["tran"][arc_name][i, j] = stats.transition_mean
                tables["delay_sigma"][arc_name][i, j] = stats.delay_sigma
                tables["tran_sigma"][arc_name][i, j] = stats.transition_sigma
                dropped = stats.n_total - stats.n_valid
                if dropped:
                    key = f"{adapter.name}.{arc_name}"
                    entry = diagnostics.setdefault(
                        key, {"dropped": 0, "points": []}
                    )
                    entry["dropped"] += dropped
                    entry["points"].append(
                        {"slew": float(slews[i]), "load": float(loads[j]),
                         "dropped": dropped, "n_total": stats.n_total}
                    )
        cells.append(
            CellTiming(
                name=adapter.name,
                vdd=task.vdd,
                delay={
                    a: LookupTable2D(slews, loads, tables["delay"][a])
                    for a in arc_names
                },
                transition={
                    a: LookupTable2D(slews, loads, tables["tran"][a])
                    for a in arc_names
                },
                delay_sigma=(
                    {a: LookupTable2D(slews, loads, tables["delay_sigma"][a])
                     for a in arc_names} if statistical else None
                ),
                transition_sigma=(
                    {a: LookupTable2D(slews, loads, tables["tran_sigma"][a])
                     for a in arc_names} if statistical else None
                ),
                arcs=tuple(adapter.arcs),
                liberty=adapter.liberty,
                n_mc=task.n_mc,
            )
        )
    library = LibraryTiming(
        name=name, vdd=task.vdd, cells=tuple(cells),
        slews=tuple(float(s) for s in slews),
        loads=tuple(float(c) for c in loads),
        n_mc=task.n_mc,
    )
    return library, diagnostics
