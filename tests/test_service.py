"""Tests for the analysis service (PR 7): store, registry, HTTP, client.

Three layers, tested bottom-up:

* :class:`repro.service.ResultStore` — the content-addressed directory
  (atomic writes, journal/checkpoint co-location);
* :class:`repro.service.JobRegistry` — in-flight dedup, cache hits,
  wave-boundary cancel, crash recovery via the journal + checkpoints;
* the HTTP surface end-to-end over an ephemeral port — including the
  malformed-payload contract: structured JSON 400s, never tracebacks.

The acceptance property threaded throughout: a service envelope is
bit-identical (up to scheduling metadata — see ``scrub_envelope``) to
``Session(executor=1).run(spec)`` on the same seed, whether it was
computed fresh, deduped, cache-hit, resumed after a kill, or resumed
after a cancel.
"""

import dataclasses
import threading
import time

import numpy as np
import pytest

from repro.api import (
    DCOp,
    Execution,
    ImportanceSampling,
    MonteCarlo,
    Session,
    Sweep,
    Yield,
    fingerprint,
)
from repro.api.serialize import dumps, encode
from repro.service import (
    AnalysisServer,
    JobRegistry,
    ResultStore,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    scrub_envelope,
)
from repro.service.jobs import JobError, UnknownJob
from repro.service.server import BadRequest, validate_document
from repro.stats import ParameterMetric

SEED = 20260101


@dataclasses.dataclass(frozen=True)
class SleepyVt0:
    """Codec-expressible vt0 metric with a controllable runtime.

    The sleep widens the window between wave boundaries so cancel /
    kill-mid-run tests land deterministically; the returned values are
    identical to ``ParameterMetric("vt0")``.
    """

    delay_s: float = 0.01

    def __call__(self, params):
        time.sleep(self.delay_s)
        return np.asarray(params.vt0)


def _threshold(technology, n_sigma: float = 3.0) -> float:
    model = technology["nmos"].statistical
    sigma = model.sigmas(600.0, 40.0)["vt0"]
    return float(np.asarray(model.nominal.vt0)) + n_sigma * sigma


def _yield_spec(technology, **overrides) -> Yield:
    base = dict(
        metric=ParameterMetric("vt0"), threshold=_threshold(technology),
        shifts={"vt0": 3.0}, n_samples=2048, n_rounds=2, n_per_round=512,
        block_size=128, w_nm=600.0, l_nm=40.0, fail_below=False,
    )
    base.update(overrides)
    return Yield(**base)


def _sleepy_spec(technology, delay_s: float = 0.01, **overrides) -> Yield:
    return _yield_spec(
        technology, metric=SleepyVt0(delay_s), n_samples=4096,
        n_rounds=1, n_per_round=512, block_size=64, **overrides,
    )


def _local_run(technology, spec):
    """The reference envelope: a plain 1-worker local session run."""
    session = Session(technology=technology, seed=SEED, executor=1)
    try:
        return session.run(spec)
    finally:
        session.close()


def _wait_state(registry, fp, *, leaving="running", timeout=60.0):
    deadline = time.monotonic() + timeout
    while registry.get(fp).state == leaving:
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {fp} still {leaving}")
        time.sleep(0.02)
    return registry.get(fp).state


def _wait_progress(registry, fp, completed=2, timeout=60.0):
    deadline = time.monotonic() + timeout
    while True:
        status = registry.status(fp)
        if (status["progress"]["completed"] or 0) >= completed:
            return status
        if status["state"] != "running":
            raise AssertionError(f"job left running state early: {status}")
        if time.monotonic() > deadline:
            raise TimeoutError("no progress")
        time.sleep(0.02)


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(str(tmp_path / "store"))


@pytest.fixture()
def registry(technology, store) -> JobRegistry:
    reg = JobRegistry(store, Session(technology=technology, seed=SEED,
                                     executor=1))
    yield reg
    reg.shutdown(abandon_running=True, timeout=60.0)


# ----------------------------------------------------------------------
# Store.
# ----------------------------------------------------------------------
class TestResultStore:
    def test_put_get_roundtrip(self, store, technology):
        envelope = _local_run(technology, MonteCarlo(n_samples=64))
        fp = fingerprint(MonteCarlo(n_samples=64), seed=SEED)
        assert not store.has(fp)
        store.put(fp, envelope)
        assert store.has(fp)
        loaded = store.get(fp)
        assert dumps(loaded) == dumps(envelope)
        np.testing.assert_array_equal(
            loaded.payload.samples["idsat"], envelope.payload.samples["idsat"]
        )

    def test_get_text_is_byte_stable(self, store, technology):
        envelope = _local_run(technology, MonteCarlo(n_samples=64))
        store.put("f" * 64, envelope)
        assert store.get_text("f" * 64) == store.get_text("f" * 64)

    def test_journal_lifecycle(self, store):
        store.journal("a" * 64, {"spec": {"kind": "test"}})
        assert list(store.pending()) == ["a" * 64]
        store.clear_journal("a" * 64)
        assert store.pending() == {}
        store.clear_journal("a" * 64)  # idempotent

    def test_put_retires_journal_and_checkpoints(self, store, technology):
        fp = "b" * 64
        store.journal(fp, {"spec": {}})
        with open(store.checkpoint_prefix(fp) + ".0123456789ab.ckpt", "w"):
            pass
        assert store.checkpoints(fp)
        store.put(fp, _local_run(technology, MonteCarlo(n_samples=64)))
        assert store.pending() == {}
        assert store.checkpoints(fp) == []

    def test_stats(self, store):
        assert store.stats() == {"results": 0, "pending": 0, "checkpoints": 0}


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
class TestJobRegistry:
    def test_run_and_store_matches_local_session(self, registry, technology):
        spec = _yield_spec(technology)
        job, outcome = registry.submit(spec)
        assert outcome == "started"
        _wait_state(registry, job.fingerprint)
        assert registry.get(job.fingerprint).state == "done"
        stored = registry.store.get(job.fingerprint)
        reference = _local_run(technology, spec)
        assert dumps(scrub_envelope(stored)) == dumps(scrub_envelope(reference))
        # The stored spec is canonical: no service scheduling leaked in.
        assert stored.spec == spec

    def test_execution_options_are_stripped_for_identity(self, registry,
                                                         technology):
        bare = _yield_spec(technology)
        dressed = dataclasses.replace(
            bare, execution=Execution(workers=4, wave_size=2)
        )
        job, outcome = registry.submit(bare)
        _wait_state(registry, job.fingerprint)
        job2, outcome2 = registry.submit(dressed)
        assert outcome2 == "hit"
        assert job2.fingerprint == job.fingerprint

    def test_in_flight_dedup(self, registry, technology):
        spec = _sleepy_spec(technology)
        job, outcome = registry.submit(spec)
        assert outcome == "started"
        job2, outcome2 = registry.submit(spec)
        assert outcome2 == "attached"
        assert job2 is job
        assert job.submissions == 2
        _wait_state(registry, job.fingerprint)
        assert registry.store.stats()["results"] == 1

    def test_cache_hit_after_completion(self, registry, technology):
        spec = _yield_spec(technology)
        job, _ = registry.submit(spec)
        _wait_state(registry, job.fingerprint)
        before = registry.store.get_text(job.fingerprint)
        job2, outcome = registry.submit(spec)
        assert outcome == "hit"
        # A hit is served from disk: the stored bytes are untouched.
        assert registry.store.get_text(job.fingerprint) == before

    def test_circuit_specs_are_rejected(self, registry):
        with pytest.raises(JobError, match="circuit"):
            registry.submit(DCOp())

    def test_unknown_job(self, registry):
        with pytest.raises(UnknownJob):
            registry.status("0" * 64)

    def test_cancel_keeps_checkpoints_clears_journal(self, registry,
                                                     technology):
        spec = _sleepy_spec(technology)
        job, _ = registry.submit(spec)
        _wait_progress(registry, job.fingerprint)
        assert registry.cancel(job.fingerprint)
        state = _wait_state(registry, job.fingerprint)
        assert state == "cancelled"
        stats = registry.store.stats()
        assert stats["pending"] == 0      # a cancel is a decision...
        assert stats["checkpoints"] >= 1  # ...but the work is kept
        # The truncated envelope is available as the partial.
        partial = registry.partial(job.fingerprint)
        assert partial["envelope"].runtime.stop_reason == "cancelled"

    def test_resubmit_after_cancel_resumes(self, registry, technology):
        spec = _sleepy_spec(technology)
        job, _ = registry.submit(spec)
        # Wait past the CE adaptation rounds (8 blocks) into the
        # estimation phase so wave-boundary checkpoints exist.
        _wait_progress(registry, job.fingerprint, completed=12)
        registry.cancel(job.fingerprint)
        _wait_state(registry, job.fingerprint)
        job2, outcome = registry.submit(spec)
        assert outcome == "started"
        _wait_state(registry, job2.fingerprint)
        stored = registry.store.get(job2.fingerprint)
        assert stored.runtime.resumed_shards > 0
        reference = _local_run(technology, spec)
        assert dumps(scrub_envelope(stored)) == dumps(scrub_envelope(reference))

    def test_abandon_and_recover_resumes_from_checkpoint(self, technology,
                                                         store):
        spec = _sleepy_spec(technology)
        fp = fingerprint(spec, seed=SEED)

        first = JobRegistry(store, Session(technology=technology, seed=SEED,
                                           executor=1))
        job, _ = first.submit(spec)
        # Past adaptation, into checkpointed estimation waves.
        _wait_progress(first, fp, completed=12)
        # Abandoning shutdown = what SIGKILL leaves on disk: pending
        # journal + wave-boundary checkpoints, no stored result.
        first.shutdown(abandon_running=True, timeout=60.0)
        assert store.stats()["pending"] == 1
        assert store.stats()["checkpoints"] >= 1
        assert not store.has(fp)

        second = JobRegistry(store, Session(technology=technology, seed=SEED,
                                            executor=1))
        try:
            resumed = second.recover()
            assert resumed == [fp]
            _wait_state(second, fp)
            stored = store.get(fp)
            assert stored.runtime.resumed_shards > 0
            reference = _local_run(technology, spec)
            assert dumps(scrub_envelope(stored)) == (
                dumps(scrub_envelope(reference))
            )
            assert store.stats()["pending"] == 0
        finally:
            second.shutdown(timeout=60.0)

    def test_recover_drops_journal_from_other_seed(self, technology, store):
        # Regression: a journal entry written by a daemon rooted at a
        # different seed must not be replayed (the re-fingerprint under
        # the new seed would silently rerun the work under a new store
        # key) and must be cleared so it is not replayed again on every
        # subsequent restart.
        spec = _yield_spec(technology)
        other_seed = SEED + 1
        fp_other = fingerprint(spec, seed=other_seed)
        store.journal(fp_other, {
            "fingerprint": fp_other,
            "seed": other_seed,
            "spec": encode(spec),
        })

        registry = JobRegistry(store, Session(technology=technology,
                                              seed=SEED, executor=1))
        try:
            with pytest.warns(RuntimeWarning, match="this daemon runs seed"):
                resumed = registry.recover()
            assert resumed == []
            assert store.stats()["pending"] == 0
            assert registry.jobs() == []
        finally:
            registry.shutdown(timeout=60.0)

    def test_store_failure_fails_job_instead_of_hanging(self, registry,
                                                        technology,
                                                        monkeypatch):
        # Regression: if persisting the envelope raises, the watcher
        # must file the job as "failed" — not die and leave the job in
        # "running" forever with pollers never seeing completion.
        def boom(fingerprint, envelope):
            raise OSError("no space left on device")

        monkeypatch.setattr(registry.store, "put", boom)
        job, _ = registry.submit(_yield_spec(technology))
        state = _wait_state(registry, job.fingerprint)
        assert state == "failed"
        assert "no space left" in registry.get(job.fingerprint).error
        with pytest.raises(JobError, match="failed"):
            registry.result_text(job.fingerprint)


# ----------------------------------------------------------------------
# Wire-document validation.
# ----------------------------------------------------------------------
class TestValidateDocument:
    def test_allows_repro_types(self, technology):
        validate_document(encode(_yield_spec(technology)), ("repro",))

    def test_rejects_disallowed_callable(self):
        with pytest.raises(BadRequest, match="os:system"):
            validate_document({"__callable__": "os:system"}, ("repro",))

    def test_rejects_disallowed_dataclass(self):
        with pytest.raises(BadRequest):
            validate_document({"__dataclass__": "subprocess:Popen",
                               "fields": {}}, ("repro",))

    def test_rejects_nested_disallowed_import(self):
        nested = {"fields": {"metric": [{"__callable__": "os.path:join"}]}}
        with pytest.raises(BadRequest):
            validate_document(nested, ("repro",))

    def test_prefix_cannot_be_spoofed(self):
        # "reprox" must not satisfy the "repro" root.
        with pytest.raises(BadRequest):
            validate_document({"__callable__": "reprox.evil:f"}, ("repro",))

    def test_dotted_qualname_cannot_reach_reimported_modules(self):
        # Regression (RCE): repro.service.store imports os at module
        # level, so a dotted qualname under an allowed module prefix
        # getattr-walks to os.system — decode() would then execute
        # cls(**fields).  Both tag kinds must reject it before decode.
        evil = "repro.service.store:os.system"
        with pytest.raises(BadRequest, match="top-level"):
            validate_document(
                {"__dataclass__": evil, "fields": {"command": "true"}},
                ("repro",),
            )
        with pytest.raises(BadRequest, match="top-level"):
            validate_document({"__callable__": evil}, ("repro",))

    def test_rejects_objects_reexported_into_allowed_modules(self):
        # Even an undotted name must resolve to an object *defined*
        # under an allowed root — repro.api.serialize's own top-level
        # imports (json, np) are not admissible.
        for name in ("repro.api.serialize:json", "repro.api.serialize:np"):
            with pytest.raises(BadRequest, match="defined in"):
                validate_document({"__callable__": name}, ("repro",))

    def test_dataclass_tag_must_name_a_dataclass(self):
        with pytest.raises(BadRequest, match="dataclass"):
            validate_document(
                {"__dataclass__": "repro.api.serialize:encode",
                 "fields": {}}, ("repro",),
            )

    def test_rejects_unresolvable_tag(self):
        with pytest.raises(BadRequest, match="cannot resolve"):
            validate_document(
                {"__callable__": "repro.api.serialize:no_such_name"},
                ("repro",),
            )


# ----------------------------------------------------------------------
# HTTP end-to-end.
# ----------------------------------------------------------------------
@pytest.fixture()
def server(technology, tmp_path):
    config = ServiceConfig(
        port=0, store=str(tmp_path / "store"), workers=1, seed=SEED,
        allow_modules=("repro", SleepyVt0.__module__),
    )
    instance = AnalysisServer(config, technology=technology).start()
    yield instance
    instance.stop(abandon_running=True, timeout=60.0)


class TestHTTPService:
    def test_healthz(self, server):
        health = ServiceClient(server.url).health()
        assert health["ok"] is True
        assert health["seed"] == SEED

    def test_submit_poll_fetch_matches_local(self, server, technology):
        client = ServiceClient(server.url)
        spec = _yield_spec(technology)
        job = client.submit(spec)
        assert job["outcome"] == "started"
        envelope = client.result(job, timeout=120.0)
        reference = _local_run(technology, spec)
        assert dumps(scrub_envelope(envelope)) == (
            dumps(scrub_envelope(reference))
        )
        # Identical second POST is a cache hit with the same id.
        again = client.submit(spec)
        assert again["outcome"] == "hit"
        assert again["job"] == job["job"]
        # Result bytes are stable fetch-to-fetch.
        assert client.result_document(job) == client.result_document(job)

    def test_sweep_progress_and_partial(self, server, technology):
        client = ServiceClient(server.url)
        sweep = Sweep(
            ImportanceSampling(
                metric=SleepyVt0(0.01), threshold=_threshold(technology),
                shifts={"vt0": 3.0}, n_samples=256, w_nm=600.0, l_nm=40.0,
                fail_below=False,
            ),
            over={"w_nm": tuple(float(w) for w in (600, 800, 1000, 1200,
                                                   1400, 1600, 1800, 2000))},
        )
        job = client.submit(sweep)
        saw_points = False
        for _ in range(2000):
            status = client.status(job)
            if status["state"] != "running":
                break
            snapshot = client.partial(job)
            partial = snapshot.get("partial")
            if partial and partial.get("points"):
                saw_points = True
                # Atomic pair: the point count always matches progress.
                assert len(partial["points"]) == (
                    snapshot["progress"]["completed"]
                )
            time.sleep(0.01)
        assert client.status(job)["state"] == "done"
        assert saw_points
        envelope = client.result(job, timeout=120.0)
        assert len(envelope.points) == sweep.n_points

    def test_cancel_over_http(self, server, technology):
        client = ServiceClient(server.url)
        job = client.submit(_sleepy_spec(technology, delay_s=0.02))
        while (client.status(job)["progress"]["completed"] or 0) < 2:
            time.sleep(0.02)
        assert client.cancel(job)["cancelled"] is True
        while client.status(job)["state"] == "running":
            time.sleep(0.02)
        assert client.status(job)["state"] == "cancelled"
        snapshot = client.partial(job)
        assert snapshot["envelope"].runtime.stop_reason == "cancelled"
        with pytest.raises(ServiceError) as err:
            client.result(job)
        assert err.value.status == 409

    def test_result_before_done_is_409(self, server, technology):
        client = ServiceClient(server.url)
        job = client.submit(_sleepy_spec(technology, delay_s=0.02))
        with pytest.raises(ServiceError) as err:
            client.result(job, wait=False)
        assert err.value.status == 409
        assert err.value.kind == "JobNotReady"
        client.cancel(job)

    def test_malformed_payloads_are_structured_400s(self, server):
        import json
        import urllib.error
        import urllib.request

        def post(raw: bytes):
            request = urllib.request.Request(
                f"{server.url}/jobs", data=raw, method="POST",
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=30):
                    raise AssertionError("expected an error status")
            except urllib.error.HTTPError as exc:
                return exc.code, json.loads(exc.read())

        # Not JSON at all.
        code, body = post(b"this is not json {")
        assert code == 400
        assert body["error"]["type"] == "BadRequest"
        # JSON, wrong shape.
        code, body = post(b'{"nope": 1}')
        assert code == 400 and "spec" in body["error"]["message"]
        # Well-formed document, disallowed import.
        code, body = post(json.dumps(
            {"spec": {"__callable__": "os:system"}}).encode())
        assert code == 400 and "os:system" in body["error"]["message"]
        # Valid type, invalid field value: the spec's own validation
        # fires during decode and surfaces as a structured BadRequest.
        bad = encode(MonteCarlo(n_samples=100))
        bad["fields"]["n_samples"] = -5
        code, body = post(json.dumps({"spec": bad}).encode())
        assert code == 400 and body["error"]["type"] == "BadRequest"
        assert "n_samples" in body["error"]["message"]
        # A circuit-bound spec cannot be served.
        code, body = post(json.dumps({"spec": encode(DCOp())}).encode())
        assert code == 400 and "circuit" in body["error"]["message"]

    def test_unknown_routes_and_jobs(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as err:
            client.status("0" * 64)
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nonsense")
        assert err.value.status == 404


# ----------------------------------------------------------------------
# Observability surface (PR 8): /metrics and /jobs/<fp>/timeline.
# ----------------------------------------------------------------------
class TestObservabilitySurface:
    def test_metrics_json_reflects_requests_and_jobs(self, server,
                                                     technology):
        client = ServiceClient(server.url)
        job = client.submit(_yield_spec(technology))
        client.result(job, timeout=120.0)
        snapshot = client.metrics()
        requests = snapshot["repro_service_requests_total"]
        assert requests["type"] == "counter"
        routes = {tuple(sorted(s["labels"].items())): s["value"]
                  for s in requests["series"]}
        assert any(dict(k)["route"] == "/jobs" for k in routes)
        # Job-state gauges are refreshed at scrape time.
        states = {s["labels"]["state"]: s["value"]
                  for s in snapshot["repro_service_jobs"]["series"]}
        assert states["done"] >= 1
        # Request latency histogram carries cumulative buckets.
        latency = snapshot["repro_service_request_seconds"]["series"][0]
        assert latency["buckets"]["+Inf"] == latency["count"]
        assert "repro_service_job_seconds" in snapshot
        assert "repro_service_submissions_total" in snapshot

    def test_metrics_prometheus_exposition(self, server):
        from tests.test_obs import _assert_valid_prometheus

        client = ServiceClient(server.url)
        client.health()
        text = client.metrics(format="prometheus")
        _assert_valid_prometheus(text)
        assert "# TYPE repro_service_requests_total counter" in text
        assert "# TYPE repro_service_request_seconds histogram" in text
        assert "# TYPE repro_service_jobs gauge" in text
        # Accept-header negotiation picks the text exposition too.
        import urllib.request

        request = urllib.request.Request(
            f"{server.url}/metrics", headers={"Accept": "text/plain"})
        with urllib.request.urlopen(request, timeout=30) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
        # And an unknown format is a structured 400.
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/metrics?format=xml")
        assert err.value.status == 400

    def test_timeline_records_job_lifecycle(self, server, technology):
        client = ServiceClient(server.url)
        spec = _yield_spec(technology)
        job = client.submit(spec)
        client.result(job, timeout=120.0)
        timeline = client.timeline(job)
        events = [entry["event"] for entry in timeline["events"]]
        assert events[:2] == ["submitted", "started"]
        assert events[-1] == "done"
        assert timeline["state"] == "done"
        assert timeline["duration_s"] >= 0.0
        stamps = [entry["t"] for entry in timeline["events"]]
        assert stamps == sorted(stamps)
        # A store hit shows up on the same job's timeline.
        again = client.submit(spec)
        assert again["outcome"] == "hit"
        assert "hit" in [e["event"]
                         for e in client.timeline(job)["events"]]

    def test_timeline_unknown_job_is_404(self, server):
        with pytest.raises(ServiceError) as err:
            ServiceClient(server.url).timeline("0" * 64)
        assert err.value.status == 404

    def test_cancel_shows_on_timeline(self, server, technology):
        client = ServiceClient(server.url)
        job = client.submit(_sleepy_spec(technology, delay_s=0.02))
        while (client.status(job)["progress"]["completed"] or 0) < 2:
            time.sleep(0.02)
        client.cancel(job)
        while client.status(job)["state"] == "running":
            time.sleep(0.02)
        events = [e["event"] for e in client.timeline(job)["events"]]
        assert "cancel_requested" in events
        assert events[-1] == "cancelled"


# ----------------------------------------------------------------------
# RunHandle snapshot atomicity (the PR 7 cross-thread polling fix).
# ----------------------------------------------------------------------
class TestRunHandleSnapshot:
    def test_polling_thread_sees_consistent_pairs(self, technology):
        """Regression: progress() and partial() used to be two separate
        lock acquisitions, so a poller could pair wave k's progress with
        wave k+1's accumulator.  snapshot() must always return a
        matching (progress, partial) pair."""
        session = Session(technology=technology, seed=SEED, executor=1)
        sweep = Sweep(
            ImportanceSampling(
                metric=SleepyVt0(0.005), threshold=_threshold(technology),
                shifts={"vt0": 3.0}, n_samples=128, w_nm=600.0, l_nm=40.0,
                fail_below=False,
            ),
            over={"w_nm": tuple(float(w) for w in range(600, 1800, 100))},
        )
        handle = session.submit(sweep)
        observations = []
        violations = []

        def poll():
            while not handle.done():
                snap = handle.snapshot()
                if snap.partial is not None and "points" in snap.partial:
                    pair = (snap.progress.completed,
                            len(snap.partial["points"]))
                    observations.append(pair)
                    if pair[0] != pair[1]:
                        violations.append(pair)

        pollers = [threading.Thread(target=poll) for _ in range(3)]
        for thread in pollers:
            thread.start()
        result = handle.result()
        for thread in pollers:
            thread.join()
        session.close()
        assert violations == []
        assert observations, "pollers never observed a wave boundary"
        assert len(result.points) == sweep.n_points
        # Finished handles report a terminal snapshot.
        final = handle.snapshot()
        assert final.progress.done
        assert final.progress.completed == final.progress.total
