"""`Characterize`/`CharacterizeLibrary` specs through `Session.run`.

Covers the grid-point shard contract (tables identical at 1 and 4
workers and across shard sizes), serial bit-identity with the legacy
`characterize_cell`, multi-cell Liberty export consumed by the reader,
Monte-Carlo sigma tables + dropped-sample diagnostics, and the
table-driven SSTA loop (`TableDelay` arcs inside `ssta_low_vdd`).
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.api import Characterize, CharacterizeLibrary, Execution, Session
from repro.cells import NominalDeviceFactory
from repro.charlib import characterize_cell, parse_liberty
from repro.charlib.arcs import Arc, ArcAdapter, LibertyCell

SLEWS = (5e-12, 20e-12)
LOADS = (1e-15, 4e-15)


@pytest.fixture()
def session(technology) -> Session:
    return Session(technology=technology, seed=20250101)


def _assert_cells_equal(a, b):
    for arc in a.delay:
        np.testing.assert_array_equal(a.delay[arc].values, b.delay[arc].values)
        np.testing.assert_array_equal(a.transition[arc].values,
                                      b.transition[arc].values)
        if a.delay_sigma is not None:
            np.testing.assert_array_equal(a.delay_sigma[arc].values,
                                          b.delay_sigma[arc].values)


class TestSpecValidation:
    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError, match="unknown cell"):
            Characterize(cell="nor3")
        with pytest.raises(ValueError, match="unknown cell"):
            CharacterizeLibrary(cells=("inv", "nor3"))

    def test_grid_axes_validated(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Characterize(slews=(2e-12, 1e-12))
        with pytest.raises(ValueError, match="positive"):
            Characterize(loads=(0.0, 1e-15))
        with pytest.raises(ValueError, match="non-empty"):
            Characterize(slews=())

    def test_counts_and_model_validated(self):
        with pytest.raises(ValueError):
            Characterize(n_mc=-1)
        with pytest.raises(ValueError):
            Characterize(model="spice")
        with pytest.raises(ValueError, match="at least one cell"):
            CharacterizeLibrary(cells=())

    def test_requires_no_circuit(self, session):
        from repro.circuit import Circuit

        with pytest.raises(ValueError, match="does not take a circuit"):
            session.run(Characterize(slews=SLEWS, loads=LOADS),
                        Circuit(title="X"))


class TestSerialPath:
    def test_bit_identical_to_characterize_cell(self, session, technology):
        slews = (SLEWS[0],)
        result = session.run(Characterize(cell="inv", slews=slews, loads=LOADS))
        legacy = characterize_cell(
            NominalDeviceFactory(technology, "vs"),
            slews=slews, loads=LOADS,
        )
        for arc in ("tphl", "tplh"):
            np.testing.assert_array_equal(
                result.payload.delay[arc].values, legacy.delay[arc].values
            )
            np.testing.assert_array_equal(
                result.payload.transition[arc].values,
                legacy.transition[arc].values,
            )
        assert result.runtime is None
        assert result.payload.delay_sigma is None
        assert result.meta["grid_points"] == 2
        assert result.meta["diagnostics"] == {}


class TestGridPointShardContract:
    @pytest.fixture(scope="class")
    def runs(self, technology):
        """One tiny MC grid under every execution regime."""
        session = Session(technology=technology, seed=20250101)

        def spec(execution):
            return Characterize(
                cell="inv", slews=(SLEWS[0],), loads=LOADS, n_mc=5,
                execution=execution,
            )

        out = {
            "unsharded": session.run(spec(None)),
            "w1s1": session.run(spec(Execution(workers=1, shard_size=1))),
            "w1s2": session.run(spec(Execution(workers=1, shard_size=2))),
            "w4": session.run(spec(Execution(workers=4))),
        }
        session.close()
        return out

    def test_identical_at_one_and_four_workers(self, runs):
        assert runs["w1s1"].runtime.executor == "serial"
        assert runs["w4"].runtime.executor == "process-pool"
        assert runs["w4"].runtime.workers == 4
        _assert_cells_equal(runs["w1s1"].payload, runs["w4"].payload)

    def test_shard_size_only_changes_scheduling(self, runs):
        # Streams hang off grid-point indices, so even the shard size
        # (unlike the sample-shard contract of PR 3) cannot move a bit.
        assert runs["w1s1"].runtime.n_shards == 2
        assert runs["w1s2"].runtime.n_shards == 1
        _assert_cells_equal(runs["w1s1"].payload, runs["w1s2"].payload)

    def test_sharded_matches_unsharded_serial(self, runs):
        assert runs["unsharded"].runtime is None
        _assert_cells_equal(runs["unsharded"].payload, runs["w1s1"].payload)


class TestLibrary:
    @pytest.fixture(scope="class")
    def library_result(self, technology):
        session = Session(technology=technology, seed=20250101)
        return session.run(CharacterizeLibrary(
            cells=("inv", "nand2", "dff"), slews=SLEWS, loads=(2e-15,),
            name="kit40",
        ))

    def test_covers_all_three_cells(self, library_result):
        library = library_result.payload
        assert [c.name for c in library.cells] == ["INV", "NAND2", "DFF"]
        assert set(library.cell("INV").delay) == {"tphl", "tplh"}
        assert set(library.cell("NAND2").delay) == {"tphl", "tplh"}
        assert set(library.cell("DFF").delay) == {"tpcq_lh", "tpcq_hl"}
        for cell in library.cells:
            for table in cell.delay.values():
                assert np.all(np.isfinite(table.values))
                assert np.all(table.values > 0.0)

    def test_liberty_export_consumed(self, library_result):
        text = library_result.payload.liberty()
        assert text.startswith("library (kit40) {")
        parsed = parse_liberty(text)
        assert set(parsed) == {"INV", "NAND2", "DFF"}
        library = library_result.payload
        np.testing.assert_allclose(
            parsed["NAND2"]["cell_fall"].values,
            library.cell("NAND2").delay["tphl"].values, rtol=1e-5,
        )
        np.testing.assert_allclose(
            parsed["DFF"]["cell_rise"].values,
            library.cell("DFF").delay["tpcq_lh"].values, rtol=1e-5,
        )


@dataclass(frozen=True)
class _HalfDead(ArcAdapter):
    """Adapter dropping half of every Monte-Carlo point's samples."""

    name: str = "FLAKY"

    @property
    def arcs(self):
        return (Arc("tphl", "cell_fall", "fall_transition"),)

    @property
    def liberty(self):
        return LibertyCell(("A",), "Y", "(!A)", "A")

    def measure_point(self, factory, vdd, slew_in, c_load):
        n = factory.batch_shape[0]
        delays = np.linspace(1e-12, 2e-12, n)
        transitions = np.linspace(2e-12, 3e-12, n)
        delays[n // 2:] = np.nan
        return {"tphl": (delays, transitions)}


class TestStatisticalTables:
    def test_sigma_tables_and_diagnostics(self, session):
        result = session.run(Characterize(
            cell=_HalfDead(), slews=SLEWS, loads=LOADS, n_mc=8,
        ))
        timing = result.payload
        assert timing.delay_sigma is not None
        assert np.all(np.isfinite(timing.delay_sigma["tphl"].values))
        diag = result.meta["diagnostics"]
        assert diag["FLAKY.tphl"]["dropped"] == 4 * 4  # 4 points x 4 NaN
        assert len(diag["FLAKY.tphl"]["points"]) == 4
        assert result.n_samples == 8
        assert result.seed is not None

    def test_real_cell_sigma_positive(self, session):
        result = session.run(Characterize(
            cell="inv", slews=(SLEWS[0],), loads=(LOADS[0],), n_mc=6,
        ))
        sigma = result.payload.delay_sigma["tphl"].values
        assert np.all(sigma > 0.0)
        assert result.meta["diagnostics"] == {}


class TestTableDrivenSSTA:
    def test_ssta_low_vdd_runs_on_characterized_tables(self, session):
        from repro.experiments import ssta_low_vdd

        result = ssta_low_vdd.run(
            vdds=(0.9,), n_device_mc=10, n_graph_mc=2000,
            arc_source="table", session=session,
        )
        assert result.arc_source == "table"
        case = result.cases[0]
        assert 1e-12 < case.mc_mean < 1e-9
        # Gaussian table arcs: Clark must track the graph Monte-Carlo.
        assert case.clark_mean == pytest.approx(case.mc_mean, rel=0.05)
        assert "TableDelay" in ssta_low_vdd.report(result)

    def test_invalid_arc_source_rejected(self, session):
        from repro.experiments import ssta_low_vdd

        with pytest.raises(ValueError, match="arc_source"):
            ssta_low_vdd.run(arc_source="liberty", session=session)
