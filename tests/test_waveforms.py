"""Source waveforms, including the batch-delay mechanism behind Fig. 8."""

import numpy as np
import pytest

from repro.circuit.waveforms import DC, PiecewiseLinear, Pulse, Step


class TestDC:
    def test_constant(self):
        w = DC(0.9)
        assert float(w.value(0.0)) == 0.9
        assert float(w.value(1e-9)) == 0.9

    def test_batched_level(self):
        w = DC(np.array([0.1, 0.9]))
        np.testing.assert_allclose(w.value(5e-12), [0.1, 0.9])


class TestStep:
    def test_before_and_after(self):
        w = Step(0.0, 0.9, t_step=10e-12, t_rise=2e-12)
        assert float(w.value(0.0)) == 0.0
        assert float(w.value(20e-12)) == 0.9

    def test_midpoint(self):
        w = Step(0.0, 0.9, t_step=10e-12, t_rise=2e-12)
        assert float(w.value(11e-12)) == pytest.approx(0.45)

    def test_rejects_zero_rise(self):
        with pytest.raises(ValueError):
            Step(0.0, 1.0, 0.0, t_rise=0.0)


class TestPulse:
    def make(self, **kw):
        defaults = dict(v0=0.0, v1=0.9, delay=10e-12, t_rise=2e-12,
                        t_fall=2e-12, width=20e-12)
        defaults.update(kw)
        return Pulse(**defaults)

    def test_phases(self):
        w = self.make()
        assert float(w.value(0.0)) == 0.0                 # before delay
        assert float(w.value(11e-12)) == pytest.approx(0.45)   # mid-rise
        assert float(w.value(20e-12)) == pytest.approx(0.9)    # top
        assert float(w.value(33e-12)) == pytest.approx(0.45)   # mid-fall
        assert float(w.value(50e-12)) == pytest.approx(0.0)    # after

    def test_periodic(self):
        w = self.make(period=100e-12)
        assert float(w.value(120e-12)) == pytest.approx(float(w.value(20e-12)))

    def test_single_shot_stays_low(self):
        w = self.make(period=0.0)
        assert float(w.value(500e-12)) == pytest.approx(0.0)

    def test_inverted_pulse(self):
        # Clock-bar style: starts high, drops low.
        w = Pulse(0.9, 0.0, delay=10e-12, t_rise=2e-12, t_fall=2e-12, width=20e-12)
        assert float(w.value(0.0)) == pytest.approx(0.9)
        assert float(w.value(20e-12)) == pytest.approx(0.0)

    def test_batched_delay(self):
        w = self.make(delay=np.array([10e-12, 15e-12]))
        values = w.value(12e-12)
        assert values[0] == pytest.approx(0.9)   # past its rise
        assert values[1] == pytest.approx(0.0)   # not yet risen

    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            self.make(width=-1e-12)


class TestPWL:
    def test_interpolation(self):
        w = PiecewiseLinear([0.0, 1e-9], [0.0, 1.0])
        assert float(w.value(0.5e-9)) == pytest.approx(0.5)

    def test_holds_ends(self):
        w = PiecewiseLinear([1e-9, 2e-9], [0.2, 0.8])
        assert float(w.value(0.0)) == pytest.approx(0.2)
        assert float(w.value(5e-9)) == pytest.approx(0.8)

    def test_batched_delay_shifts_waveform(self):
        w = PiecewiseLinear([0.0, 1e-9], [0.0, 1.0],
                            delay=np.array([0.0, 0.5e-9]))
        values = w.value(1.0e-9)
        assert values[0] == pytest.approx(1.0)
        assert values[1] == pytest.approx(0.5)

    def test_rejects_nonincreasing_times(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([0.0, 0.0], [0.0, 1.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([0.0, 1.0, 2.0], [0.0, 1.0])
