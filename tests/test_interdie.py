"""Inter-die + within-die composition (the Eq. 1 extension)."""

import numpy as np
import pytest

from repro.cells.factory import MonteCarloDeviceFactory
from repro.data.cards import paper_alphas_nmos, vs_nmos_40nm
from repro.devices.vs.statistical import StatisticalVSModel


@pytest.fixture()
def model() -> StatisticalVSModel:
    return StatisticalVSModel(vs_nmos_40nm(), paper_alphas_nmos())


class TestExtraDeviations:
    def test_offsets_shift_the_mean(self, model, rng):
        offsets = {"vt0": np.full(4000, 0.02)}
        sample = model.sample(4000, rng, w_nm=600.0, l_nm=40.0,
                              extra_deviations=offsets)
        nominal_vt0 = float(np.asarray(model.nominal.vt0))
        assert np.mean(sample.params.vt0) == pytest.approx(
            nominal_vt0 + 0.02, abs=2e-3
        )

    def test_total_variance_adds_in_quadrature(self, model, rng):
        sigma_inter = 0.02
        offsets = model.sample_interdie_offsets(
            20000, rng, {"vt0": sigma_inter}
        )
        sample = model.sample(20000, rng, w_nm=600.0, l_nm=40.0,
                              extra_deviations=offsets)
        sigma_within = model.sigmas(600.0, 40.0)["vt0"]
        expected = np.hypot(sigma_inter, sigma_within)
        assert np.std(sample.params.vt0, ddof=1) == pytest.approx(
            expected, rel=0.05
        )

    def test_unknown_parameter_rejected(self, model, rng):
        with pytest.raises(KeyError):
            model.sample(10, rng, extra_deviations={"vxo": np.zeros(10)})
        with pytest.raises(KeyError):
            model.sample_interdie_offsets(10, rng, {"beta": 1.0})


class TestFactoryInterdie:
    def test_die_offset_shared_across_instances(self, technology):
        factory = MonteCarloDeviceFactory(
            technology, 300, model="vs", seed=3,
            interdie_sigma={"vt0": 0.03},
        )
        d1 = factory("nmos", 300.0, 40.0)
        d2 = factory("nmos", 300.0, 40.0)
        # Within-die draws are independent, but the shared die offset
        # correlates the two instances strongly (sigma_inter=30 mV vs
        # within ~21 mV at 300x40).
        r = np.corrcoef(np.asarray(d1.params.vt0), np.asarray(d2.params.vt0))[0, 1]
        assert r > 0.5

    def test_without_interdie_instances_uncorrelated(self, technology):
        factory = MonteCarloDeviceFactory(technology, 300, model="vs", seed=3)
        d1 = factory("nmos", 300.0, 40.0)
        d2 = factory("nmos", 300.0, 40.0)
        r = np.corrcoef(np.asarray(d1.params.vt0), np.asarray(d2.params.vt0))[0, 1]
        assert abs(r) < 0.2

    def test_interdie_requires_vs_model(self, technology):
        with pytest.raises(ValueError):
            MonteCarloDeviceFactory(
                technology, 10, model="bsim", interdie_sigma={"vt0": 0.02}
            )
