"""Fast Newton path (PR 9): analytic derivatives, specialized kernels,
coalesced cross-shard execution.

Four contracts are pinned here:

* **Analytic = finite differences** — the closed-form gradient hooks of
  both compact models agree with central differences of their own
  ``ids`` across random bias points and card perturbations (hypothesis
  property tests, one per model).
* **Scatter rounds = np.add.at** — the duplicate-free scatter programs
  the assembly kernels run are *bitwise* the reference ``np.add.at``
  accumulation for arbitrary index multisets.
* **Determinism matrix** — the circuit-level Monte-Carlo envelope is
  bit-identical across every fast-path switch: coalescing on/off,
  specialized kernels on/off, analytic/fd derivatives (values only),
  1/2 workers, and the legacy unsharded path.
* **Compile economics** — a sharded fig9-style run performs exactly one
  structure compile per distinct circuit topology, verified through the
  plan-cache metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

import repro.runtime.tasks as tasks_mod
from repro.api import Execution, FactoryMap, MonteCarlo, Session, Sweep
from repro.cells.sram import SRAMSpec
from repro.circuit.compiled import (
    _apply_scatter,
    _scatter_add,
    _scatter_program,
)
from repro.data.cards import bsim_nmos_40nm, vs_nmos_40nm, vs_pmos_40nm
from repro.devices.bsim.model import BSIMDevice
from repro.devices.vs.model import VSDevice
from repro.experiments.fig9_sram_snm import SNMWork


@pytest.fixture()
def session(technology) -> Session:
    return Session(technology=technology, seed=20260801)


def _vt0_metric(params):
    """Module-level (picklable) yield metric."""
    return np.asarray(params.vt0)


def _fresh_process_cache():
    """Reset the per-process plan cache (kernels are baked into cached
    structures, so REPRO_KERNELS toggles need a cold cache)."""
    tasks_mod._PROCESS_PLAN_CACHE = None


# ----------------------------------------------------------------------
# Analytic derivatives vs central differences (per model card).
# ----------------------------------------------------------------------
def _central_difference(device, vg, vd, vs, h=1e-5):
    """Reference terminal derivatives from the device's own ``ids``."""
    gm = (device.ids(vg + h, vd, vs) - device.ids(vg - h, vd, vs)) / (2 * h)
    gds = (device.ids(vg, vd + h, vs) - device.ids(vg, vd - h, vs)) / (2 * h)
    gms = (device.ids(vg, vd, vs + h) - device.ids(vg, vd, vs - h)) / (2 * h)
    return gm, gds, gms


def _assert_grad_close(device, vg, vd, vs):
    ids, gm, gds, gms = device.ids_and_derivatives(vg, vd, vs)
    ref = _central_difference(device, vg, vd, vs)
    # Conductance scale of the bias point: currents span ~10 decades, so
    # a pure rtol/atol pair cannot cover both the off and on state.
    scale = abs(float(ids)) / 0.0259 + 1e-15
    for got, want in zip((gm, gds, gms), ref):
        assert abs(float(got) - float(want)) <= 1e-4 * (
            abs(float(want)) + scale
        )


_BIAS = {
    "vg": st.floats(-0.2, 1.1),
    "vd": st.floats(0.0, 1.0),
    "vs": st.floats(0.0, 1.0),
}


class TestAnalyticDerivatives:
    @settings(max_examples=60, deadline=None)
    @given(**_BIAS, dvt=st.floats(-0.08, 0.08), w=st.floats(120.0, 900.0))
    def test_vs_nmos_matches_central_difference(self, vg, vd, vs, dvt, w):
        # The central-difference stencil must not straddle the
        # source/drain swap kink at vds = 0.
        assume(abs(vd - vs) > 1e-3)
        card = vs_nmos_40nm(w, 40.0)
        card = card.replace(vt0=float(np.asarray(card.vt0)) + dvt)
        _assert_grad_close(VSDevice(card), vg, vd, vs)

    @settings(max_examples=30, deadline=None)
    @given(**_BIAS)
    def test_vs_pmos_matches_central_difference(self, vg, vd, vs):
        assume(abs(vd - vs) > 1e-3)
        _assert_grad_close(VSDevice(vs_pmos_40nm(300.0, 40.0)), -vg, -vd, -vs)

    @settings(max_examples=60, deadline=None)
    @given(**_BIAS, dvt=st.floats(-0.08, 0.08), l=st.floats(35.0, 80.0))
    def test_bsim_nmos_matches_central_difference(self, vg, vd, vs, dvt, l):
        assume(abs(vd - vs) > 1e-3)
        card = bsim_nmos_40nm(300.0, l)
        card = card.replace(vth0=float(np.asarray(card.vth0)) + dvt)
        _assert_grad_close(BSIMDevice(card), vg, vd, vs)

    def test_fd_mode_values_bitwise_derivatives_close(self):
        """``derivatives="fd"`` stays available and shares the value path."""
        analytic = VSDevice(vs_nmos_40nm(300.0, 40.0))
        fd = VSDevice(vs_nmos_40nm(300.0, 40.0), derivatives="fd")
        bias = (0.7, 0.5, 0.05)
        ia, gma, gdsa, gmsa = analytic.ids_and_derivatives(*bias)
        i2, gmf, gdsf, gmsf = fd.ids_and_derivatives(*bias)
        np.testing.assert_array_equal(ia, i2)
        for a, f in zip((gma, gdsa, gmsa), (gmf, gdsf, gmsf)):
            assert float(a) == pytest.approx(float(f), rel=5e-3, abs=1e-12)


# ----------------------------------------------------------------------
# Scatter rounds == np.add.at, bitwise.
# ----------------------------------------------------------------------
class TestScatterProgram:
    @settings(max_examples=80, deadline=None)
    @given(data=st.data(), m=st.integers(2, 10), k=st.integers(1, 24),
           batch=st.integers(1, 5))
    def test_bitwise_equal_to_add_at(self, data, m, k, batch):
        idx = np.asarray(
            data.draw(st.lists(st.integers(0, m - 1),
                               min_size=k, max_size=k))
        )
        rng = np.random.default_rng(
            data.draw(st.integers(0, 2**32 - 1))
        )
        values = rng.standard_normal((batch, k)) * 10.0 ** rng.integers(
            -12, 3, size=(batch, k)
        )
        reference = rng.standard_normal((batch, m))
        via_add_at = reference.copy()
        _scatter_add(via_add_at, idx, values)
        via_rounds = reference.copy()
        _apply_scatter(via_rounds, _scatter_program(idx), values)
        np.testing.assert_array_equal(via_rounds, via_add_at)

    def test_rounds_preserve_occurrence_order(self):
        # idx 0 appears at positions 0, 2, 3: round r must hold its
        # (r+1)-th occurrence so accumulation order matches add.at.
        program = _scatter_program(np.array([0, 1, 0, 0]))
        assert [list(pos) for _, pos in program] == [[0, 1], [2], [3]]


# ----------------------------------------------------------------------
# Determinism matrix: every fast-path switch is invisible in the bits.
# ----------------------------------------------------------------------
N_MC = 24
SHARDS = Execution(shard_size=8)


class TestDeterminismMatrix:
    @pytest.fixture()
    def work(self, session):
        return SNMWork(SRAMSpec(), session.technology.vdd, "read")

    def _run(self, technology, work, execution, env=None, monkeypatch=None):
        if env:
            for key, value in env.items():
                monkeypatch.setenv(key, value)
        _fresh_process_cache()
        try:
            session = Session(technology=technology, seed=20260801)
            values, _ = session.map_mc(work, N_MC, model="vs",
                                       execution=execution)
            return np.asarray(values)
        finally:
            if env and monkeypatch is not None:
                monkeypatch.undo()
            _fresh_process_cache()

    def test_montecarlo_matrix(self, technology, work, monkeypatch):
        sharded = self._run(technology, work, Execution(shard_size=8))
        cases = {
            "uncoalesced": dict(
                execution=Execution(shard_size=8, coalesce=False)),
            "workers2": dict(
                execution=Execution(shard_size=8, workers=2)),
            "workers2_uncoalesced": dict(
                execution=Execution(shard_size=8, workers=2,
                                    coalesce=False)),
            "no_kernels": dict(
                execution=Execution(shard_size=8),
                env={"REPRO_KERNELS": "0"}),
            "no_kernels_workers2": dict(
                execution=Execution(shard_size=8, workers=2),
                env={"REPRO_KERNELS": "0"}),
        }
        for label, kwargs in cases.items():
            got = self._run(technology, work, monkeypatch=monkeypatch,
                            **kwargs)
            np.testing.assert_array_equal(got, sharded, err_msg=label)

    def test_sweep_composition_worker_invariant(self, technology, work):
        def run(workers):
            _fresh_process_cache()
            session = Session(technology=technology, seed=20260801)
            return session.run(Sweep(
                FactoryMap(work=work, n_samples=16,
                           execution=Execution(shard_size=8,
                                               workers=workers)),
                over={"work.vdd": (0.8, 0.9)},
            ))

        serial, parallel = run(1), run(2)
        for a, b in zip(serial.points, parallel.points):
            np.testing.assert_array_equal(a.payload, b.payload)

    def test_yield_ignores_coalesce_flag(self, session, technology):
        """Device-level yield runs accept (and ignore) the circuit-only
        coalesce switch without changing their stream."""
        from repro.api import Yield

        model = technology["nmos"].statistical
        threshold = float(np.asarray(model.nominal.vt0)) + 3.0 * (
            model.sigmas(600.0, 40.0)["vt0"]
        )
        spec = dict(
            metric=_vt0_metric, threshold=threshold, shifts={"vt0": 3.0},
            n_samples=512, n_rounds=1, n_per_round=256, block_size=128,
            w_nm=600.0, l_nm=40.0, fail_below=False,
        )
        on = session.run(Yield(**spec, execution=Execution(workers=1)))
        off = session.run(Yield(
            **spec, execution=Execution(workers=1, coalesce=False)))
        assert on.payload.probability == off.payload.probability


# ----------------------------------------------------------------------
# Compile economics: one structure compile per topology.
# ----------------------------------------------------------------------
class TestCompileEconomics:
    def test_sharded_snm_compiles_once_per_topology(self, technology):
        _fresh_process_cache()
        session = Session(technology=technology, seed=20260801)
        work = SNMWork(SRAMSpec(), technology.vdd, "read")
        session.map_mc(work, N_MC, model="vs",
                       execution=Execution(shard_size=8))
        stats = tasks_mod._process_plan_cache().stats()
        # The butterfly measurement solves two forced half-cell
        # topologies; every sweep point and every shard rebinds a cached
        # structure instead of recompiling.
        assert stats["structural_compiles"] == 2

        # A second run builds fresh circuits with the same topologies:
        # structural hits (value binding only), zero new compiles.
        session.map_mc(work, N_MC, model="vs",
                       execution=Execution(shard_size=8))
        stats = tasks_mod._process_plan_cache().stats()
        assert stats["structural_compiles"] == 2
        assert stats["structural_hits"] >= 2
        _fresh_process_cache()
