"""Units and constants: the boring code that silently corrupts everything."""

import math

import numpy as np
import pytest

from repro import constants, units


class TestConstants:
    def test_thermal_voltage_room_temperature(self):
        # kT/q at 300.15 K is ~25.9 mV.
        assert constants.thermal_voltage(300.15) == pytest.approx(0.02587, rel=1e-3)

    def test_thermal_voltage_scales_linearly(self):
        assert constants.thermal_voltage(600.3) == pytest.approx(
            2.0 * constants.thermal_voltage(300.15)
        )

    def test_thermal_voltage_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            constants.thermal_voltage(0.0)
        with pytest.raises(ValueError):
            constants.thermal_voltage(-10.0)

    def test_ln10(self):
        assert constants.LN10 == pytest.approx(math.log(10.0))


class TestUnits:
    def test_nm_roundtrip(self):
        assert units.m_to_nm(units.nm_to_m(40.0)) == pytest.approx(40.0)

    def test_nm_to_m_value(self):
        assert units.nm_to_m(40.0) == pytest.approx(4.0e-8)

    def test_uf_cm2(self):
        # 1.8 uF/cm^2 = 0.018 F/m^2.
        assert units.uf_cm2_to_si(1.8) == pytest.approx(0.018)
        assert units.si_to_uf_cm2(0.018) == pytest.approx(1.8)

    def test_mobility(self):
        # 400 cm^2/Vs = 0.04 m^2/Vs.
        assert units.cm2_vs_to_si(400.0) == pytest.approx(0.04)
        assert units.si_to_cm2_vs(0.04) == pytest.approx(400.0)

    def test_velocity(self):
        # 1e7 cm/s = 1e5 m/s.
        assert units.cm_s_to_si(1.0e7) == pytest.approx(1.0e5)
        assert units.si_to_cm_s(1.0e5) == pytest.approx(1.0e7)

    def test_current_density_identity(self):
        # A/m and uA/um are numerically identical.
        assert units.a_per_m_to_ua_per_um(123.0) == 123.0

    def test_array_input(self):
        values = np.array([10.0, 40.0])
        np.testing.assert_allclose(units.nm_to_m(values), [1e-8, 4e-8])
