"""DC analyses of the MNA engine: linear sanity, nonlinear devices, sweeps."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    GROUND,
    DC,
    dc_operating_point,
    dc_sweep,
)
from repro.circuit.dcop import initial_guess
from repro.circuit.mna import ConvergenceError, NewtonOptions
from repro.data.cards import vs_nmos_40nm, vs_pmos_40nm
from repro.devices.vs.model import VSDevice

VDD = 0.9


class TestLinearCircuits:
    def test_voltage_divider(self):
        ckt = Circuit()
        ckt.add_vsource("a", GROUND, DC(1.0), name="V1")
        ckt.add_resistor("a", "b", 1e3)
        ckt.add_resistor("b", GROUND, 3e3)
        v = dc_operating_point(ckt)
        assert v[ckt.index_of("b")] == pytest.approx(0.75, rel=1e-5)

    def test_source_branch_current(self):
        ckt = Circuit()
        src = ckt.add_vsource("a", GROUND, DC(2.0), name="V1")
        ckt.add_resistor("a", GROUND, 1e3)
        v = dc_operating_point(ckt)
        # Branch current flows out of the positive node into the source:
        # the source *delivers* 2 mA, so the branch unknown is -2 mA.
        assert v[src.branch_index] == pytest.approx(-2e-3, rel=1e-4)

    def test_current_source_into_resistor(self):
        ckt = Circuit()
        ckt.add_isource("a", GROUND, DC(1e-3), name="I1")  # out of node a
        ckt.add_resistor("a", GROUND, 1e3)
        v = dc_operating_point(ckt)
        assert v[ckt.index_of("a")] == pytest.approx(-1.0, rel=1e-4)

    def test_floating_node_held_by_gmin(self):
        ckt = Circuit()
        ckt.add_vsource("a", GROUND, DC(1.0), name="V1")
        ckt.add_resistor("a", "b", 1e3)
        ckt.node("c")  # totally floating node
        v = dc_operating_point(ckt)
        assert abs(v[ckt.index_of("c")]) < 1e-6

    def test_series_resistors_kcl(self):
        ckt = Circuit()
        ckt.add_vsource("a", GROUND, DC(3.0), name="V1")
        ckt.add_resistor("a", "b", 1e3)
        ckt.add_resistor("b", "c", 1e3)
        ckt.add_resistor("c", GROUND, 1e3)
        v = dc_operating_point(ckt)
        assert v[ckt.index_of("b")] == pytest.approx(2.0, rel=1e-5)
        assert v[ckt.index_of("c")] == pytest.approx(1.0, rel=1e-5)

    def test_rejects_nonpositive_resistance(self):
        ckt = Circuit()
        with pytest.raises(ValueError):
            ckt.add_resistor("a", "b", -5.0)

    def test_duplicate_element_names_rejected(self):
        ckt = Circuit()
        ckt.add_resistor("a", "b", 1.0, name="R1")
        with pytest.raises(ValueError):
            ckt.add_resistor("b", "c", 1.0, name="R1")


def build_vs_inverter(vin: float, batch_vt0=None):
    card_n = vs_nmos_40nm(300.0, 40.0)
    if batch_vt0 is not None:
        card_n = card_n.replace(vt0=batch_vt0)
    ckt = Circuit()
    ckt.add_vsource("vdd", GROUND, DC(VDD), name="VDD")
    ckt.add_vsource("in", GROUND, DC(vin), name="VIN")
    ckt.add_mosfet(VSDevice(vs_pmos_40nm(600.0, 40.0)), d="out", g="in", s="vdd",
                   name="MP")
    ckt.add_mosfet(VSDevice(card_n), d="out", g="in", s=GROUND, name="MN")
    return ckt


class TestNonlinearDC:
    def test_inverter_logic_levels(self):
        for vin, expect_high in ((0.0, True), (VDD, False)):
            ckt = build_vs_inverter(vin)
            v = dc_operating_point(ckt)
            out = v[ckt.index_of("out")]
            if expect_high:
                assert out > 0.85 * VDD
            else:
                assert out < 0.15 * VDD

    def test_batched_operating_point(self):
        vt0 = np.linspace(0.35, 0.50, 7)
        ckt = build_vs_inverter(0.45, batch_vt0=vt0)
        v = dc_operating_point(ckt)
        out = v[..., ckt.index_of("out")]
        assert out.shape == (7,)
        # Higher NMOS VT -> weaker pulldown -> higher output.
        assert np.all(np.diff(out) > 0.0)

    def test_initial_guess_helper(self):
        ckt = build_vs_inverter(0.0)
        guess = initial_guess(ckt, {"vdd": VDD, "out": VDD})
        v = dc_operating_point(ckt, v0=guess)
        assert v[ckt.index_of("out")] > 0.85 * VDD

    def test_kcl_satisfied_at_solution(self):
        # The supply current equals the NMOS drain current (no other path).
        ckt = build_vs_inverter(VDD)
        v = dc_operating_point(ckt)
        vdd_branch = ckt["VDD"].branch_index
        out = v[ckt.index_of("out")]
        i_nmos = float(VSDevice(vs_nmos_40nm(300.0, 40.0)).ids(VDD, out, 0.0))
        # The supply current differs from the device current only by the
        # gmin conditioning current at the vdd node (~1e-10 * Vdd).
        assert -v[vdd_branch] == pytest.approx(i_nmos, rel=5e-3)


class TestDCSweep:
    def test_inverter_vtc_monotone(self):
        ckt = build_vs_inverter(0.0)
        guess = initial_guess(ckt, {"vdd": VDD, "out": VDD})
        result = dc_sweep(ckt, "VIN", np.linspace(0.0, VDD, 31), v0=guess)
        vtc = result["out"]
        assert vtc[0] > 0.85 * VDD
        assert vtc[-1] < 0.1 * VDD
        assert np.all(np.diff(vtc) < 1e-6)

    def test_sweep_restores_source_level(self):
        ckt = build_vs_inverter(0.3)
        level_before = ckt["VIN"].waveform.level
        dc_sweep(ckt, "VIN", np.linspace(0.0, VDD, 5))
        assert ckt["VIN"].waveform.level == level_before

    def test_sweep_requires_dc_source(self):
        from repro.circuit.waveforms import Pulse

        ckt = Circuit()
        ckt.add_vsource("a", GROUND, Pulse(0, 1, 0, 1e-12, 1e-12, 1e-9), name="VP")
        ckt.add_resistor("a", GROUND, 1e3)
        with pytest.raises(TypeError):
            dc_sweep(ckt, "VP", [0.0, 1.0])

    def test_sweep_rejects_empty_values(self):
        ckt = build_vs_inverter(0.0)
        with pytest.raises(ValueError):
            dc_sweep(ckt, "VIN", [])
