"""Sensitivity extraction: signs, linearity, consistency with MC."""

import numpy as np
import pytest

from repro.data.cards import vs_nmos_40nm
from repro.fitting.targets import TARGET_ORDER
from repro.stats.pelgrom import PARAMETER_ORDER
from repro.stats.sensitivity import (
    propagate_variance,
    vs_sensitivities,
)

VDD = 0.9


@pytest.fixture(scope="module")
def sens():
    return vs_sensitivities(vs_nmos_40nm(), 600.0, 40.0, VDD)


class TestSensitivityMatrix:
    def test_shape_and_labels(self, sens):
        assert sens.matrix.shape == (len(TARGET_ORDER), len(PARAMETER_ORDER))
        assert sens.targets == TARGET_ORDER
        assert sens.parameters == PARAMETER_ORDER

    def test_idsat_decreases_with_vt0(self, sens):
        assert sens.entry("idsat", "vt0") < 0.0

    def test_ioff_decreases_with_vt0(self, sens):
        # One volt of VT shift kills many decades of leakage.
        s = sens.entry("log10_ioff", "vt0")
        assert s < -5.0

    def test_idsat_increases_with_width(self, sens):
        assert sens.entry("idsat", "weff") > 0.0

    def test_idsat_increases_with_mobility(self, sens):
        assert sens.entry("idsat", "mu") > 0.0

    def test_cgg_insensitive_to_vt0(self, sens):
        # The (near-)zero entry of Eq. 10's third row: gate cap at Vdd
        # barely cares about threshold (device deep in inversion).  A
        # full 100 mV threshold shift must move Cgg by well under 1 %.
        s_vt = abs(sens.entry("cgg", "vt0"))
        cgg_nominal = sens.nominal_targets["cgg"]
        assert s_vt * 0.1 < 0.01 * cgg_nominal

    def test_cgg_scales_with_area_parameters(self, sens):
        assert sens.entry("cgg", "weff") > 0.0
        assert sens.entry("cgg", "leff") > 0.0
        assert sens.entry("cgg", "cinv") > 0.0

    def test_ioff_increases_with_shorter_channel(self, sens):
        # Shorter Leff -> stronger DIBL -> exponentially more leakage.
        assert sens.entry("log10_ioff", "leff") < 0.0

    def test_linearity_of_targets(self):
        # BPV assumes local linearity: the sensitivity predicts a +/- 2
        # sigma excursion within a few percent.
        from repro.devices.vs.statistical import apply_deviations
        from repro.stats.sensitivity import target_vector

        nominal = vs_nmos_40nm()
        s = vs_sensitivities(nominal, 600.0, 40.0, VDD)
        base = target_vector(
            apply_deviations(nominal, 600.0, 40.0, {}), VDD, TARGET_ORDER
        )
        dv = 0.015  # ~ one sigma of VT0 at this geometry
        shifted = target_vector(
            apply_deviations(nominal, 600.0, 40.0, {"vt0": dv}), VDD, TARGET_ORDER
        )
        idx = TARGET_ORDER.index("idsat")
        predicted_idsat = base[idx] + s.entry("idsat", "vt0") * dv
        assert shifted[idx] == pytest.approx(predicted_idsat, rel=0.05)


class TestPropagateVariance:
    def test_quadrature_sum(self, sens):
        sig = propagate_variance(sens, {"vt0": 0.01})
        expected = abs(sens.entry("idsat", "vt0")) * 0.01
        assert sig["idsat"] == pytest.approx(expected, rel=1e-9)

    def test_two_parameters_add_in_quadrature(self, sens):
        a = propagate_variance(sens, {"vt0": 0.01})["idsat"]
        b = propagate_variance(sens, {"mu": 5.0})["idsat"]
        both = propagate_variance(sens, {"vt0": 0.01, "mu": 5.0})["idsat"]
        assert both == pytest.approx(np.hypot(a, b), rel=1e-9)

    def test_missing_parameters_contribute_zero(self, sens):
        sig = propagate_variance(sens, {})
        assert all(v == 0.0 for v in sig.values())

    def test_forward_propagation_matches_monte_carlo(self, rng):
        # Eq. 9 check: linear propagation ~= MC sigma for small sigmas.
        from repro.devices.vs.model import VSDevice
        from repro.devices.vs.statistical import apply_deviations
        from repro.fitting.targets import idsat as idsat_of

        nominal = vs_nmos_40nm()
        s = vs_sensitivities(nominal, 600.0, 40.0, VDD)
        sigma_vt = 0.012
        predicted = propagate_variance(s, {"vt0": sigma_vt})["idsat"]

        deviations = {"vt0": sigma_vt * rng.standard_normal(4000)}
        card = apply_deviations(nominal, 600.0, 40.0, deviations)
        samples = idsat_of(VSDevice(card), VDD)
        assert np.std(samples, ddof=1) == pytest.approx(predicted, rel=0.1)
