"""Batched-vs-scalar equivalence of the whole circuit stack.

Every cell and analysis is run twice from one fixed seed: once through
the batched Monte-Carlo path (one circuit, parameter arrays of shape
``(n,)``) and once as *n* scalar circuits replaying the same sampled
devices sample by sample.  The batched engine must reproduce the scalar
engine sample-for-sample — per-sample convergence masking means each
sample follows exactly the Newton trajectory of its standalone solve,
so agreement is to machine precision (asserted at 1e-9 relative).
"""

import numpy as np
import pytest

from repro.analysis.leakage import supply_leakage
from repro.cells.dff import DFFSpec, dff_setup_time
from repro.cells.factory import (
    MonteCarloDeviceFactory,
    RecordingFactory,
    ScalarReplayFactory,
)
from repro.cells.inverter import InverterSpec, build_inverter_fo, inverter_delays
from repro.cells.nand import Nand2Spec, nand2_delays
from repro.cells.ringosc import RingOscSpec, ring_frequency
from repro.cells.sram import SRAMSpec, butterfly_curves, sram_snm

RTOL = 1e-9


def _compare(technology, measure, n_samples, model="vs", seed=11):
    """Run *measure* batched and per-sample; return both result arrays."""
    recorder = RecordingFactory(
        MonteCarloDeviceFactory(technology, n_samples, model=model, seed=seed)
    )
    batched = np.asarray(measure(recorder), dtype=float)
    scalars = np.stack(
        [
            np.asarray(
                measure(ScalarReplayFactory(recorder.devices, k)), dtype=float
            )
            for k in range(n_samples)
        ],
        axis=-1,
    )
    return batched, scalars


def _assert_equivalent(batched, scalars):
    assert batched.shape == scalars.shape
    np.testing.assert_allclose(batched, scalars, rtol=RTOL, equal_nan=True)


class TestCells:
    @pytest.mark.parametrize("model", ["vs", "bsim"])
    def test_inverter_delays(self, technology, model):
        spec = InverterSpec(600.0, 300.0)

        def measure(factory):
            delays = inverter_delays(factory, spec, technology.vdd, dt=1e-12)
            return np.stack([delays["tphl"].delay, delays["tplh"].delay])

        batched, scalars = _compare(technology, measure, 6, model=model)
        _assert_equivalent(batched, scalars)

    def test_nand2_delays(self, technology):
        spec = Nand2Spec()

        def measure(factory):
            return nand2_delays(
                factory, spec, technology.vdd, dt=1e-12
            )["tphl"].delay

        batched, scalars = _compare(technology, measure, 5)
        _assert_equivalent(batched, scalars)

    @pytest.mark.parametrize("mode", ["read", "hold"])
    def test_sram_snm(self, technology, mode):
        spec = SRAMSpec()

        def measure(factory):
            return sram_snm(factory, spec, technology.vdd, mode=mode)

        batched, scalars = _compare(technology, measure, 6, seed=23)
        _assert_equivalent(batched, scalars)

    def test_sram_butterfly_voltages(self, technology):
        """Raw DC-sweep transfer curves (not just the SNM scalar)."""
        spec = SRAMSpec()

        def measure(factory):
            _, curve_a, curve_b = butterfly_curves(
                factory, spec, technology.vdd, mode="read", n_points=31
            )
            return np.stack([curve_a, curve_b])

        batched, scalars = _compare(technology, measure, 4, seed=29)
        _assert_equivalent(batched, scalars)

    def test_ring_frequency(self, technology):
        spec = RingOscSpec(n_stages=3)

        def measure(factory):
            return ring_frequency(factory, spec, technology.vdd, dt=2e-12)

        batched, scalars = _compare(technology, measure, 4, seed=31)
        _assert_equivalent(batched, scalars)

    def test_dff_setup_time(self, technology):
        """Batched bisection: every sample follows its scalar schedule."""
        spec = DFFSpec()

        def measure(factory):
            return dff_setup_time(
                factory, spec, technology.vdd, n_iterations=4, dt=2e-12
            )

        batched, scalars = _compare(technology, measure, 3, seed=37)
        _assert_equivalent(batched, scalars)


class TestCompiledEngine:
    def test_alphapower_devices_compile_and_solve(self, technology):
        """Models without a `phit` attribute (alpha-power) stack too."""
        from repro.circuit import Circuit, GROUND, DC, dc_operating_point
        from repro.devices.alphapower.model import AlphaPowerDevice
        from repro.devices.alphapower.params import AlphaPowerParams
        from repro.devices.base import Polarity

        vdd = technology.vdd
        nmos = AlphaPowerDevice(AlphaPowerParams(polarity=Polarity.NMOS))
        pmos = AlphaPowerDevice(AlphaPowerParams(polarity=Polarity.PMOS))
        circuit = Circuit()
        circuit.add_vsource("vdd", GROUND, DC(vdd), name="VDD")
        circuit.add_vsource("in", GROUND, DC(0.0), name="VIN")
        circuit.add_mosfet(pmos, d="out", g="in", s="vdd", name="MP")
        circuit.add_mosfet(nmos, d="out", g="in", s=GROUND, name="MN")
        assert circuit.compiled() is not None
        solution = dc_operating_point(circuit)
        # Input low -> output pulled to the rail.
        assert solution[circuit.index_of("out")] == pytest.approx(vdd, abs=0.05)

    def test_parameter_rebinding_invalidates_compile_cache(self):
        """Rebinding an element parameter after a solve must recompile."""
        from repro.circuit import Circuit, GROUND, DC, dc_operating_point

        circuit = Circuit()
        circuit.add_vsource("a", GROUND, DC(1.0), name="V1")
        circuit.add_resistor("a", "b", 1e3, name="R1")
        circuit.add_resistor("b", GROUND, 1e3, name="R2")
        first = dc_operating_point(circuit)[circuit.index_of("b")]
        assert first == pytest.approx(0.5, abs=1e-6)

        circuit["R1"].resistance = 3e3
        second = dc_operating_point(circuit)[circuit.index_of("b")]
        assert second == pytest.approx(0.25, abs=1e-6)

    def test_waveform_batch_shape_change_invalidates_compile_cache(self):
        """Rebinding a source to a different batch shape must recompile
        (waveform values are exempt from the fingerprint, shapes are not)."""
        from repro.circuit import Circuit, GROUND, DC, dc_operating_point

        circuit = Circuit()
        circuit.add_vsource("a", GROUND, DC(1.0), name="V1")
        circuit.add_resistor("a", "b", 1e3, name="R1")
        circuit.add_resistor("b", GROUND, 1e3, name="R2")
        scalar = dc_operating_point(circuit)
        assert scalar.shape == (3,)

        circuit["V1"].waveform = DC(np.array([1.0, 2.0, 3.0]))
        batched = dc_operating_point(circuit)
        assert batched.shape == (3, 3)
        np.testing.assert_allclose(
            batched[:, circuit.index_of("b")], [0.5, 1.0, 1.5], atol=1e-6
        )


class TestAnalyses:
    def test_supply_leakage(self, technology):
        spec = InverterSpec(600.0, 300.0)

        def measure(factory):
            circuit, hints = build_inverter_fo(
                factory, spec, technology.vdd, separate_load_supply=True
            )
            return supply_leakage(circuit, "VDD", hints)

        batched, scalars = _compare(technology, measure, 8, seed=41)
        _assert_equivalent(batched, scalars)

    def test_mixed_nominal_and_batched_parameters(self, technology):
        """A circuit mixing scalar cards and batched waveform delays still
        broadcasts to the full Monte-Carlo batch."""
        from repro.circuit.netlist import Circuit, GROUND
        from repro.circuit.transient import transient
        from repro.circuit.waveforms import PiecewiseLinear

        delays = np.array([5e-12, 10e-12, 20e-12])
        wave = PiecewiseLinear([0.0, 5e-12], [0.0, technology.vdd], delay=delays)

        def build(delay_value):
            circuit = Circuit()
            circuit.add_vsource("in", GROUND, wave_k(delay_value), name="VIN")
            circuit.add_resistor("in", "out", 1e4)
            circuit.add_capacitor("out", GROUND, 1e-15)
            return circuit

        def wave_k(delay_value):
            return PiecewiseLinear(
                [0.0, 5e-12], [0.0, technology.vdd], delay=delay_value
            )

        circuit = Circuit()
        circuit.add_vsource("in", GROUND, wave, name="VIN")
        circuit.add_resistor("in", "out", 1e4)
        circuit.add_capacitor("out", GROUND, 1e-15)
        batched = transient(circuit, 60e-12, 1e-12)["out"]
        assert batched.shape[1:] == (3,)

        for k, delay_value in enumerate(delays):
            scalar = transient(build(float(delay_value)), 60e-12, 1e-12)["out"]
            np.testing.assert_allclose(batched[:, k], scalar, rtol=RTOL)
