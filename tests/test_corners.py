"""Corner generation from the statistical model."""

import numpy as np
import pytest

from repro.data.cards import paper_alphas_nmos, paper_alphas_pmos
from repro.data.cards import vs_nmos_40nm, vs_pmos_40nm
from repro.devices.vs.model import VSDevice
from repro.devices.vs.statistical import StatisticalVSModel
from repro.fitting.targets import idsat, log10_ioff
from repro.stats.corners import (
    corner_card,
    corner_coverage,
    generate_corners,
)

VDD = 0.9


@pytest.fixture()
def n_model():
    return StatisticalVSModel(vs_nmos_40nm(), paper_alphas_nmos())


@pytest.fixture()
def p_model():
    return StatisticalVSModel(vs_pmos_40nm(), paper_alphas_pmos())


class TestCornerCards:
    def test_fast_beats_typical_beats_slow(self, n_model):
        ion = {}
        for speed in (+1.0, 0.0, -1.0):
            card = corner_card(n_model, speed, 3.0, w_nm=300.0, l_nm=40.0)
            ion[speed] = float(np.asarray(idsat(VSDevice(card), VDD)).squeeze())
        assert ion[+1.0] > ion[0.0] > ion[-1.0]

    def test_fast_corner_leaks_more(self, n_model):
        fast = corner_card(n_model, +1.0, 3.0, w_nm=300.0, l_nm=40.0)
        slow = corner_card(n_model, -1.0, 3.0, w_nm=300.0, l_nm=40.0)
        leak_fast = float(np.asarray(log10_ioff(VSDevice(fast), VDD)).squeeze())
        leak_slow = float(np.asarray(log10_ioff(VSDevice(slow), VDD)).squeeze())
        assert leak_fast > leak_slow + 0.5  # decades apart at 3 sigma

    def test_larger_k_widens_bracket(self, n_model):
        ion_3 = float(np.asarray(idsat(
            VSDevice(corner_card(n_model, 1.0, 3.0, 300.0, 40.0)), VDD
        )).squeeze())
        ion_1 = float(np.asarray(idsat(
            VSDevice(corner_card(n_model, 1.0, 1.0, 300.0, 40.0)), VDD
        )).squeeze())
        assert ion_3 > ion_1

    def test_corner_set_complete(self, n_model, p_model):
        corners = generate_corners(n_model, p_model, k_sigma=3.0)
        assert set(corners) == {"TT", "FF", "SS", "FS", "SF"}
        # FS: fast NMOS, slow PMOS.
        fs = corners["FS"]
        tt = corners["TT"]
        ion_fs_n = float(np.asarray(idsat(VSDevice(fs.nmos), VDD)).squeeze())
        ion_tt_n = float(np.asarray(idsat(VSDevice(tt.nmos), VDD)).squeeze())
        ion_fs_p = float(np.asarray(idsat(VSDevice(fs.pmos), VDD)).squeeze())
        ion_tt_p = float(np.asarray(idsat(VSDevice(tt.pmos), VDD)).squeeze())
        assert ion_fs_n > ion_tt_n
        assert ion_fs_p < ion_tt_p

    def test_k_sigma_validation(self, n_model, p_model):
        with pytest.raises(ValueError):
            generate_corners(n_model, p_model, k_sigma=0.0)


class TestCoverage:
    def test_three_sigma_corners_bracket_mc(self, n_model, rng):
        coverage, ratio = corner_coverage(
            n_model, 3.0, VDD, 4000, rng, w_nm=300.0, l_nm=40.0
        )
        # All-parameters-together corners are conservative: essentially
        # the whole MC cloud sits inside the [SS, FF] on-current bracket.
        assert coverage > 0.995
        assert ratio > 1.1

    def test_one_sigma_corners_cover_less(self, n_model, rng):
        cov3, _ = corner_coverage(n_model, 3.0, VDD, 3000, rng, 300.0, 40.0)
        cov1, _ = corner_coverage(n_model, 1.0, VDD, 3000, rng, 300.0, 40.0)
        assert cov1 < cov3
