"""Tests for the cluster executor (PR 10): coordinator, workers, wire.

The headline invariant: a :class:`~repro.cluster.ClusterExecutor` is
scheduling only.  For every spec family the cluster envelope — at any
worker count, under injected worker death, heartbeat loss, duplicate
frames, or a coordinator crash resumed from checkpoint — is
bit-identical (after ``scrub_envelope``) to ``Session(executor=1)``.
The fault matrix runs on :class:`~repro.cluster.ScriptedFaults` hooks,
never on sleeps: every failure is injected at a deterministic point in
the dispatch path.

The wire tests pin the shared trust boundary (`repro.cluster.wire`):
one allowlist and one frame codec serve both the HTTP service and the
cluster protocol, and the PR-7 dotted-qualname RCE fix holds on the
new framing.
"""

import contextlib
import os
import pickle
import signal
import socket
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.api import Characterize, Execution, MonteCarlo, Session, Sweep, Yield
from repro.api.serialize import dumps, encode
from repro.cluster import (
    BadRequest,
    ClusterExecutor,
    ClusterWorkerError,
    CoordinatorCrash,
    ScriptedFaults,
    WorkerAgent,
    WorkerConfig,
    parse_address,
    read_frame,
    restricted_loads,
    validate_document,
    write_frame,
)
from repro.cluster import wire
from repro.obs import Tracer, default_registry
from repro.runtime.executors import ParallelExecutor, resolve_executor
from repro.runtime.sharding import Shard
from repro.service.store import scrub_envelope
from repro.stats import ParameterMetric

SEED = 20260808
SRC = str(Path(__file__).resolve().parent.parent / "src")


# ----------------------------------------------------------------------
# Helpers.
# ----------------------------------------------------------------------
def _spec(family, execution=None):
    if family == "montecarlo":
        return MonteCarlo(n_samples=48, execution=execution)
    if family == "sweep":
        return Sweep(MonteCarlo(n_samples=32), over={"w_nm": (600.0, 900.0)},
                     execution=execution)
    if family == "yield":
        return Yield(
            metric=ParameterMetric("vt0"), threshold=-3.0,
            shifts={"vt0": -2.0}, n_samples=192, n_rounds=1,
            n_per_round=128, block_size=64, execution=execution,
        )
    if family == "characterize":
        return Characterize(cell="inv", slews=(5e-12,), loads=(1e-15, 4e-15),
                            execution=execution)
    raise AssertionError(family)


def _norm(result):
    return dumps(scrub_envelope(result))


@contextlib.contextmanager
def _cluster(n_workers=2, names=None, faults=None, allow=("repro",),
             **kwargs):
    """A bound coordinator plus *n_workers* in-process agents."""
    kwargs.setdefault("worker_wait", 60.0)
    executor = ClusterExecutor("tcp://127.0.0.1:0", faults=faults,
                               allow_modules=allow, **kwargs)
    agents = []
    try:
        for i in range(n_workers):
            name = None if names is None else names[i]
            agents.append(WorkerAgent(
                WorkerConfig(connect=executor.address, name=name,
                             allow_modules=allow)
            ).start())
        yield executor, agents
    finally:
        for agent in agents:
            agent.stop()
        executor.close()


class _BoomTask:
    """Shard task that always raises — a workload bug, not a fault."""

    coalesce = True

    def run_chunk(self, shards):
        raise RuntimeError("boom: workload bug")

    def __call__(self, shard):
        raise RuntimeError("boom: workload bug")


class _EchoTask:
    """Shard task echoing shard geometry (cheap protocol exerciser)."""

    coalesce = True

    def run_chunk(self, shards):
        return tuple(
            (s.index, (s.start, s.stop, s.base_seed)) for s in shards
        )

    def __call__(self, shard):
        return self.run_chunk((shard,))[0:1]


def _shards(n, base_seed=42):
    return [
        Shard(index=i, start=i * 10, stop=i * 10 + 10, base_seed=base_seed,
              spawn_prefix=())
        for i in range(n)
    ]


#: Allowlist admitting this test module's own task classes on the wire.
TEST_ALLOW = ("repro", __name__.partition(".")[0])


class _Moduleless:
    """Provenance-free object for the defined-in rejection test."""


_Moduleless.__module__ = None


def _counter_total(name):
    family = default_registry().snapshot().get(name)
    if not family:
        return 0.0
    return sum(series["value"] for series in family["series"])


@pytest.fixture(scope="module")
def golden(technology):
    """Lazily computed serial envelopes, one per spec family."""
    cache = {}

    def get(family):
        if family not in cache:
            with Session(technology=technology, seed=SEED, executor=1) as s:
                cache[family] = _norm(s.run(_spec(family)))
        return cache[family]

    return get


# ----------------------------------------------------------------------
# Wire: frame codec.
# ----------------------------------------------------------------------
class _SockPair:
    def __init__(self):
        self.a, self.b = socket.socketpair()

    def close(self):
        self.a.close()
        self.b.close()


@pytest.fixture()
def pair():
    p = _SockPair()
    yield p
    p.close()


class TestFrameCodec:
    def test_round_trip(self, pair):
        blob = pickle.dumps((1, 2, 3))
        write_frame(pair.a, {"type": "result", "lease": 7}, blob)
        header, got = read_frame(pair.b)
        assert header == {"type": "result", "lease": 7}
        assert got == blob

    def test_empty_blob(self, pair):
        write_frame(pair.a, {"type": "heartbeat"})
        header, blob = read_frame(pair.b)
        assert header["type"] == "heartbeat"
        assert blob == b""

    def test_clean_eof_returns_none(self, pair):
        pair.a.close()
        assert read_frame(pair.b) is None

    def test_mid_frame_eof_raises(self, pair):
        payload = wire._PREFIX.pack(wire._MAGIC, 100, 0)
        pair.a.sendall(payload[: len(payload) - 2] + b'{"')
        pair.a.close()
        with pytest.raises(wire.WireError):
            read_frame(pair.b)

    def test_bad_magic_rejected(self, pair):
        pair.a.sendall(wire._PREFIX.pack(b"EVIL", 2, 0) + b"{}")
        with pytest.raises(wire.WireError, match="magic"):
            read_frame(pair.b)

    def test_oversized_header_rejected(self, pair):
        pair.a.sendall(
            wire._PREFIX.pack(wire._MAGIC, wire.MAX_HEADER_BYTES + 1, 0))
        with pytest.raises(wire.WireError):
            read_frame(pair.b)

    def test_header_must_be_dict_with_type(self, pair):
        body = b'["not", "a", "dict"]'
        pair.a.sendall(wire._PREFIX.pack(wire._MAGIC, len(body), 0) + body)
        with pytest.raises(wire.WireError):
            read_frame(pair.b)

    def test_header_must_be_json(self, pair):
        body = b"\xff\xfe not json"
        pair.a.sendall(wire._PREFIX.pack(wire._MAGIC, len(body), 0) + body)
        with pytest.raises(wire.WireError):
            read_frame(pair.b)


# ----------------------------------------------------------------------
# Wire: trust boundary shared with the service (PR-7 RCE regression).
# ----------------------------------------------------------------------
class TestSharedValidator:
    def test_service_imports_are_the_same_objects(self):
        # One allowlist, one codec: the HTTP service's validator IS the
        # cluster validator, so a hardening fix lands on both at once.
        from repro.service import server

        assert server.validate_document is validate_document
        assert server.BadRequest is BadRequest
        assert issubclass(BadRequest, wire.WireError)

    def test_dotted_qualname_rejected_on_frame_header(self, pair):
        # The PR-7 RCE shape — a dataclass tag whose qualname walks
        # getattr chains ("repro.x:os.system") — must die at the frame
        # boundary, before any pickle bytes are touched.
        evil = {"type": "submit",
                "spec": {"__dataclass__": "repro.api.specs:os.system"}}
        write_frame(pair.a, evil)
        with pytest.raises(wire.WireError, match="os.system"):
            read_frame(pair.b)

    def test_non_allowlisted_module_rejected_on_header(self, pair):
        write_frame(pair.a, {"type": "x",
                             "f": {"__callable__": "subprocess:Popen"}})
        with pytest.raises(wire.WireError, match="module roots"):
            read_frame(pair.b)

    def test_validate_document_accepts_real_spec(self):
        validate_document(encode(MonteCarlo(n_samples=16)), ("repro",))

    def test_restricted_loads_round_trips_repro_objects(self):
        shard = Shard(index=0, start=0, stop=4, base_seed=9,
                      spawn_prefix=())
        assert restricted_loads(pickle.dumps(shard)) == shard

    def test_restricted_loads_rejects_dotted_names(self):
        # Forge a GLOBAL opcode asking for a getattr walk from an
        # allowlisted module — the pickle analogue of the PR-7 RCE.
        evil = b"crepro.api.specs\nos.system\n."
        with pytest.raises(wire.WireError, match="top-level name"):
            restricted_loads(evil)

    def test_restricted_loads_rejects_non_allowlisted_roots(self):
        blob = pickle.dumps(subprocess.Popen)
        with pytest.raises(wire.WireError, match="module roots"):
            restricted_loads(blob)

    def test_restricted_loads_rejects_module_objects(self):
        blob = b"crepro\napi\n."  # allowlisted root, resolves to a module
        with pytest.raises(wire.WireError, match="module"):
            restricted_loads(blob)

    def test_restricted_loads_rejects_corrupt_blob(self):
        with pytest.raises(wire.WireError, match="malformed"):
            restricted_loads(b"\x80\x05 definitely not a pickle")

    def test_restricted_loads_rejects_builtins_eval(self):
        # The infra allowlist is name-level, not module-level: 'eval',
        # 'exec' and '__import__' are all defined in 'builtins' (with
        # undotted names), so a blanket 'builtins' root would hand a
        # forged REDUCE frame arbitrary code execution.
        evil = b"cbuiltins\neval\n(S'__import__(\"os\").getpid()'\ntR."
        with pytest.raises(wire.WireError, match="builtins:eval"):
            restricted_loads(evil)

    @pytest.mark.parametrize("name", ["exec", "__import__", "getattr",
                                      "open", "compile", "vars"])
    def test_restricted_loads_rejects_builtins_callables(self, name):
        blob = b"cbuiltins\n" + name.encode() + b"\n."
        with pytest.raises(wire.WireError, match=f"builtins:{name}"):
            restricted_loads(blob)

    def test_restricted_loads_rejects_numpy_load(self):
        # numpy.load(..., allow_pickle=True) nests an *unrestricted*
        # unpickle — a blanket 'numpy' root would readmit the RCE one
        # level down.
        with pytest.raises(wire.WireError, match="numpy:load"):
            restricted_loads(b"cnumpy\nload\n.")

    def test_restricted_loads_admits_real_shard_payloads(self):
        # Everything an actual (pairs, timing) result frame is built
        # from must still clear the name-level allowlist.
        payload = {
            "contig": np.arange(5.0),
            "strided": np.arange(10.0)[::2],
            "scalar": np.float64(1.5),
            "structured": np.zeros(2, dtype=[("a", "f8"), ("b", "i4")]),
            "complex": 1 + 2j,
            "ordered": __import__("collections").OrderedDict(a=1),
        }
        out = restricted_loads(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        assert out["contig"].tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert out["strided"].tolist() == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert out["scalar"] == 1.5 and out["complex"] == 1 + 2j

    def test_restricted_loads_rejects_moduleless_objects(self):
        # An object whose provenance cannot be established (__module__
        # is None) must be rejected under an allowed root, exactly like
        # _validate_tag does on the document side.
        blob = f"c{TEST_ALLOW[1]}\n_Moduleless\n.".encode()
        with pytest.raises(wire.WireError, match="defined in"):
            restricted_loads(blob, TEST_ALLOW)


# ----------------------------------------------------------------------
# Address parsing + executor resolution.
# ----------------------------------------------------------------------
class TestAddresses:
    def test_parse_tcp_scheme(self):
        assert parse_address("tcp://10.0.0.1:7400") == ("10.0.0.1", 7400)

    def test_parse_bare_host_port(self):
        assert parse_address("localhost:7400") == ("localhost", 7400)

    def test_rejects_other_schemes(self):
        with pytest.raises(ValueError):
            parse_address("http://host:80")

    def test_rejects_missing_port(self):
        with pytest.raises(ValueError):
            parse_address("tcp://host")

    def test_resolve_executor_builds_cluster(self):
        executor = resolve_executor("tcp://127.0.0.1:0")
        try:
            assert isinstance(executor, ClusterExecutor)
            assert executor.kind == "cluster"
        finally:
            executor.close()

    def test_resolve_executor_rejects_other_strings(self):
        with pytest.raises(ValueError, match="tcp://"):
            resolve_executor("udp://127.0.0.1:1")


# ----------------------------------------------------------------------
# Satellite: executor lifecycle.
# ----------------------------------------------------------------------
class TestExecutorLifecycle:
    def test_parallel_close_is_idempotent(self):
        executor = ParallelExecutor(2)
        executor.warm()
        executor.close()
        executor.close()
        assert executor._pool is None

    def test_parallel_del_never_raises_after_close(self):
        executor = ParallelExecutor(2)
        executor.close()
        executor.__del__()  # must be a silent no-op

    def test_cluster_close_is_idempotent(self):
        executor = ClusterExecutor("tcp://127.0.0.1:0")
        executor.close()
        executor.close()
        executor.__del__()

    def test_session_is_a_context_manager(self, technology):
        with Session(technology=technology, seed=SEED, executor=1) as s:
            inner = s
        # close() ran on exit and is safe to repeat.
        inner.close()

    def test_session_borrows_caller_executors(self, technology):
        # A caller-passed instance is borrowed: the session context
        # manager releases it from the cache but leaves it running for
        # its owner to close.
        executor = ClusterExecutor("tcp://127.0.0.1:0")
        try:
            with Session(technology=technology, seed=SEED,
                         executor=executor) as s:
                assert s.workers == "cluster"
            assert not executor._closed
        finally:
            executor.close()
        assert executor._closed

    def test_cluster_execution_needs_cluster_session(self, technology):
        with Session(technology=technology, seed=SEED, executor=1) as s:
            with pytest.raises(ValueError, match="cluster"):
                s.run(MonteCarlo(
                    n_samples=16,
                    execution=Execution(workers="cluster"),
                ))

    def test_execution_workers_validation(self):
        assert Execution(workers="cluster").workers == "cluster"
        with pytest.raises(ValueError):
            Execution(workers="fleet")
        with pytest.raises(ValueError):
            Execution(workers=0)


# ----------------------------------------------------------------------
# Headline: bit-identity at 1/2/3 workers for every spec family.
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("family",
                             ["montecarlo", "sweep", "yield", "characterize"])
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_cluster_matches_serial(self, technology, golden, family,
                                    n_workers):
        with _cluster(n_workers) as (executor, _):
            with Session(technology=technology, seed=SEED,
                         executor=executor) as s:
                result = s.run(_spec(family))
        assert _norm(result) == golden(family)

    def test_runtime_reports_cluster_workers(self, technology):
        with _cluster(2) as (executor, _):
            with Session(technology=technology, seed=SEED,
                         executor=executor) as s:
                result = s.run(_spec("montecarlo"))
        assert result.runtime.workers == 2


# ----------------------------------------------------------------------
# Fault matrix: every failure injected deterministically, every
# envelope still bit-identical to serial.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", ["montecarlo", "yield"])
class TestFaultMatrix:
    def test_worker_killed_mid_wave(self, technology, golden, family):
        # The first lease dispatch permanently stops that worker; its
        # shards must be stolen by the survivor.
        killed = []

        def kill_first(worker, lease):
            if not killed:
                killed.append(worker.name)
                agents_by_name[worker.name].stop(timeout=0)

        faults = ScriptedFaults(on_dispatch_hook=kill_first)
        retries_before = _counter_total("repro_cluster_retries_total")
        with _cluster(2, names=["w0", "w1"], faults=faults) as (executor,
                                                                agents):
            agents_by_name = {"w0": agents[0], "w1": agents[1]}
            with Session(technology=technology, seed=SEED, executor=executor,
                         tracer=Tracer(), metrics=True) as s:
                result = s.run(_spec(family))
        assert killed, "fault hook never fired"
        assert _norm(result) == golden(family)
        telemetry = result.runtime.telemetry
        assert "repro_cluster_retries_total" in telemetry["metrics"]
        assert _counter_total("repro_cluster_retries_total") > retries_before
        assert _counter_total("repro_cluster_stolen_shards_total") > 0

    def test_worker_heartbeat_timeout(self, technology, golden, family):
        # One worker is connected but blackholed: every frame it sends
        # (heartbeats included) is dropped, so the coordinator must
        # declare it dead on the heartbeat deadline and reshard.
        retries_before = _counter_total("repro_cluster_retries_total")
        faults = ScriptedFaults(blackhole="mute")
        with _cluster(2, names=["mute", "live"], faults=faults,
                      heartbeat_timeout=1.0) as (executor, _):
            with Session(technology=technology, seed=SEED,
                         executor=executor) as s:
                result = s.run(_spec(family))
        assert _norm(result) == golden(family)
        assert _counter_total("repro_cluster_retries_total") >= retries_before

    def test_duplicate_result_frame(self, technology, golden, family):
        # The first result frame is delivered twice; the second copy
        # must be suppressed by first-completion-wins.
        duplicates_before = _counter_total(
            "repro_cluster_duplicate_results_total")
        faults = ScriptedFaults(duplicate_results=1)
        with _cluster(2, faults=faults) as (executor, _):
            with Session(technology=technology, seed=SEED,
                         executor=executor) as s:
                result = s.run(_spec(family))
        assert _norm(result) == golden(family)
        assert _counter_total(
            "repro_cluster_duplicate_results_total") > duplicates_before

    def test_coordinator_restart_resumes_from_checkpoint(
            self, technology, golden, family, tmp_path):
        # Crash the coordinator after the first accepted result; a
        # fresh coordinator + fresh workers must resume from the wave
        # checkpoint and produce the serial payload bit-for-bit.
        prefix = str(tmp_path / "cluster.ckpt")
        shard_size = {"montecarlo": 16, "yield": 64}[family]
        execution = Execution(workers="cluster", shard_size=shard_size,
                              wave_size=1, checkpoint=prefix)
        spec = _spec(family, execution=execution)
        # Crash mid-estimation, after at least one wave (one shard per
        # wave) has checkpointed: for MC that is result 2 of 3; yield
        # spends its first two results on the CE adaptation round
        # (n_per_round=128 / block 64), so its estimation phase reaches
        # wave 2 at result 4.
        crash_after = {"montecarlo": 2, "yield": 4}[family]
        faults = ScriptedFaults(crash_after_results=crash_after)
        with _cluster(2, faults=faults) as (executor, _):
            with Session(technology=technology, seed=SEED,
                         executor=executor) as s:
                with pytest.raises(CoordinatorCrash):
                    s.run(spec)
        with _cluster(2) as (executor, _):
            with Session(technology=technology, seed=SEED,
                         executor=executor) as s:
                resumed = s.run(spec)
        assert resumed.runtime.resumed_shards >= 1
        with Session(technology=technology, seed=SEED, executor=1) as s:
            serial = s.run(_spec(family, execution=Execution(
                workers=1, shard_size=shard_size, wave_size=1)))
        # The spec embeds its execution options (checkpoint path,
        # worker token), so compare the payloads, not the envelopes.
        assert dumps(scrub_envelope(resumed).payload) \
            == dumps(scrub_envelope(serial).payload)


# ----------------------------------------------------------------------
# Elasticity and recovery mechanics.
# ----------------------------------------------------------------------
class TestElasticity:
    def test_aborted_worker_reconnects_and_run_completes(self, technology,
                                                         golden):
        # abort() models a network drop, not a death: the agent must
        # reconnect with backoff and the run must still complete even
        # with no second worker to steal the leases.
        aborted = []

        def drop_once(worker, lease):
            if not aborted:
                aborted.append(worker.name)
                agents_by_name[worker.name].abort()

        faults = ScriptedFaults(on_dispatch_hook=drop_once)
        with _cluster(1, names=["flaky"], faults=faults) as (executor,
                                                             agents):
            agents_by_name = {"flaky": agents[0]}
            with Session(technology=technology, seed=SEED,
                         executor=executor) as s:
                result = s.run(_spec("montecarlo"))
        assert aborted
        assert _norm(result) == golden("montecarlo")

    def test_worker_gives_up_after_max_connects(self):
        # Nothing listens on the target port: the agent retries with
        # backoff, then returns 1 after max_connects failures.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        agent = WorkerAgent(WorkerConfig(
            connect=f"127.0.0.1:{port}", reconnect_base=0.01,
            reconnect_cap=0.02, max_connects=3,
        ))
        assert agent.run() == 1
        assert agent.connect_failures == 3

    def test_worker_started_before_coordinator_binds(self, technology,
                                                     golden):
        # Elastic join: the agent spins on connection retries until the
        # coordinator appears, then serves normally.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        agent = WorkerAgent(WorkerConfig(
            connect=f"127.0.0.1:{port}", reconnect_base=0.01,
            reconnect_cap=0.05,
        )).start()
        executor = ClusterExecutor(f"tcp://127.0.0.1:{port}",
                                   worker_wait=60.0)
        try:
            with Session(technology=technology, seed=SEED,
                         executor=executor) as s:
                result = s.run(_spec("montecarlo"))
        finally:
            agent.stop()
            executor.close()
        assert _norm(result) == golden("montecarlo")

    def test_task_error_propagates_not_retries(self):
        # A task that raises is a workload bug, not a scheduling fault:
        # the coordinator must surface it instead of resharding forever.
        with _cluster(1, allow=TEST_ALLOW) as (executor, _):
            with pytest.raises(ClusterWorkerError, match="boom"):
                executor.map_shards(_BoomTask(), _shards(3))

    def test_map_shards_preserves_index_order(self):
        with _cluster(3, allow=TEST_ALLOW) as (executor, _):
            pairs = executor.map_shards(_EchoTask(), _shards(13))
        assert [index for index, _ in pairs] == list(range(13))
        assert pairs[4][1] == (40, 50, 42)


# ----------------------------------------------------------------------
# Executor reuse: an aborted wave must not poison the next one.
# ----------------------------------------------------------------------
def _map_in_thread(executor, task, shards, timeout=60.0):
    """Run map_shards off-thread so a regression deadlocks the thread,
    not the test suite."""
    result = {}
    runner = threading.Thread(
        target=lambda: result.setdefault(
            "pairs", executor.map_shards(task, shards)),
        daemon=True,
    )
    runner.start()
    runner.join(timeout)
    assert not runner.is_alive(), "map_shards deadlocked on a reused executor"
    return result["pairs"]


class TestExecutorReuseAfterFailure:
    def test_wave_after_task_error_still_dispatches(self):
        # Regression: the aborted wave's lease used to stay in
        # worker.leases forever — with the default concurrency=1 the
        # worker had no free slot left and every later wave on the same
        # executor (e.g. the shared serve --cluster daemon executor)
        # deadlocked.
        with _cluster(1, allow=TEST_ALLOW) as (executor, _):
            with pytest.raises(ClusterWorkerError, match="boom"):
                executor.map_shards(_BoomTask(), _shards(3))
            pairs = _map_in_thread(executor, _EchoTask(), _shards(5))
        assert [index for index, _ in pairs] == list(range(5))
        assert pairs[2][1] == (20, 30, 42)

    def test_stale_error_frames_do_not_poison_next_wave(self):
        # Both workers report the deterministic task failure; the first
        # error frame aborts wave 1, the second may still be queued (or
        # in flight) when wave 2 starts.  It must be discarded — not
        # raised as a ClusterWorkerError against the healthy wave, and
        # its lease must not be resharded into it.
        with _cluster(2, allow=TEST_ALLOW) as (executor, _):
            with pytest.raises(ClusterWorkerError, match="boom"):
                executor.map_shards(_BoomTask(), _shards(8))
            pairs = _map_in_thread(executor, _EchoTask(), _shards(8))
        assert [index for index, _ in pairs] == list(range(8))

    def test_repeated_failures_then_success(self):
        # The daemon-executor pattern: several failing jobs in a row,
        # then a good one, all on one executor and one worker slot.
        with _cluster(1, allow=TEST_ALLOW) as (executor, _):
            for _ in range(3):
                with pytest.raises(ClusterWorkerError, match="boom"):
                    executor.map_shards(_BoomTask(), _shards(2))
            pairs = _map_in_thread(executor, _EchoTask(), _shards(4))
        assert [index for index, _ in pairs] == list(range(4))


# ----------------------------------------------------------------------
# Authentication: the hello/welcome shared-secret handshake.
# ----------------------------------------------------------------------
class TestClusterAuth:
    def test_wrong_token_is_rejected_and_fatal(self):
        executor = ClusterExecutor("tcp://127.0.0.1:0", token="sesame")
        agent = WorkerAgent(WorkerConfig(
            connect=executor.address, token="wrong", reconnect_base=0.01,
        ))
        try:
            # Fatal, not retried: run() returns instead of spinning on
            # reconnect, and the peer was never registered as a worker.
            assert agent.run() == 1
            assert not executor._workers
        finally:
            executor.close()

    def test_missing_token_is_rejected(self):
        executor = ClusterExecutor("tcp://127.0.0.1:0", token="sesame")
        agent = WorkerAgent(WorkerConfig(
            connect=executor.address, reconnect_base=0.01,
        ))
        try:
            assert agent.run() == 1
            assert not executor._workers
        finally:
            executor.close()

    def test_matching_token_serves_leases(self):
        executor = ClusterExecutor("tcp://127.0.0.1:0", token="sesame",
                                   allow_modules=TEST_ALLOW)
        agent = WorkerAgent(WorkerConfig(
            connect=executor.address, token="sesame",
            allow_modules=TEST_ALLOW,
        )).start()
        try:
            pairs = executor.map_shards(_EchoTask(), _shards(4))
        finally:
            agent.stop()
            executor.close()
        assert [index for index, _ in pairs] == list(range(4))

    def test_env_var_token_reaches_both_sides(self, monkeypatch):
        # The Session("tcp://...") and serve --cluster paths construct
        # the coordinator deep inside resolve_executor, so the secret
        # travels via REPRO_CLUSTER_TOKEN.
        monkeypatch.setenv("REPRO_CLUSTER_TOKEN", "sesame")
        executor = ClusterExecutor("tcp://127.0.0.1:0",
                                   allow_modules=TEST_ALLOW)
        assert executor.token == "sesame"
        agent = WorkerAgent(WorkerConfig(
            connect=executor.address, allow_modules=TEST_ALLOW,
        )).start()
        try:
            pairs = executor.map_shards(_EchoTask(), _shards(3))
        finally:
            agent.stop()
            executor.close()
        assert [index for index, _ in pairs] == list(range(3))

    def test_non_loopback_bind_without_token_warns(self, monkeypatch):
        monkeypatch.delenv("REPRO_CLUSTER_TOKEN", raising=False)
        with pytest.warns(RuntimeWarning, match="token"):
            executor = ClusterExecutor("tcp://0.0.0.0:0")
        executor.close()

    def test_non_loopback_bind_with_token_is_silent(self):
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            executor = ClusterExecutor("tcp://0.0.0.0:0", token="sesame")
        executor.close()


# ----------------------------------------------------------------------
# Worker task cache: true LRU, not FIFO.
# ----------------------------------------------------------------------
class TestWorkerTaskCache:
    def test_task_cache_evicts_least_recently_used(self, monkeypatch):
        # Cache size 2; runs 1 and 2 are cached, then a lease touches
        # run 1 before run 3 arrives.  FIFO would evict run 1 (the
        # oldest *insert*) and answer the next run-1 lease with
        # unknown-run; LRU evicts run 2 and serves it from cache.
        from repro.cluster import worker as worker_mod

        monkeypatch.setattr(worker_mod, "_TASK_CACHE_SIZE", 2)
        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]
        agent = WorkerAgent(WorkerConfig(
            connect=f"127.0.0.1:{port}", allow_modules=TEST_ALLOW,
        )).start()
        conn, _ = server.accept()

        def next_frame():
            while True:
                frame = read_frame(conn, TEST_ALLOW)
                assert frame is not None, "worker hung up mid-test"
                if frame[0].get("type") != "heartbeat":
                    return frame

        def lease(lease_id, run):
            write_frame(conn, {
                "type": "lease", "lease": lease_id, "run": run,
                "shards": [{"index": 0, "start": 0, "stop": 10,
                            "base_seed": 42, "spawn_prefix": []}],
            })
            return next_frame()[0]

        try:
            hello = next_frame()[0]
            assert hello["type"] == "hello"
            write_frame(conn, {"type": "welcome", "protocol": wire.PROTOCOL,
                               "heartbeat_timeout": 15.0})
            blob = pickle.dumps(_EchoTask(),
                                protocol=pickle.HIGHEST_PROTOCOL)
            write_frame(conn, {"type": "task", "run": 1}, blob)
            write_frame(conn, {"type": "task", "run": 2}, blob)
            assert lease(1, 1)["type"] == "result"   # refreshes run 1
            write_frame(conn, {"type": "task", "run": 3}, blob)  # evicts 2
            reply = lease(2, 1)
            assert reply["type"] == "result", f"run 1 was evicted: {reply}"
            evicted = lease(3, 2)
            assert evicted["type"] == "error"
            assert evicted["code"] == "unknown-run"
        finally:
            agent.stop()
            conn.close()
            server.close()


# ----------------------------------------------------------------------
# Headline SIGKILL run: real worker processes, one killed mid-wave.
# ----------------------------------------------------------------------
class TestSubprocessWorkers:
    def test_sigkilled_worker_preserves_bit_identity(self, technology,
                                                     golden):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        killed = []

        def sigkill_first(worker, lease):
            if not killed:
                killed.append(worker.pid)
                os.kill(worker.pid, signal.SIGKILL)

        faults = ScriptedFaults(on_dispatch_hook=sigkill_first)
        executor = ClusterExecutor("tcp://127.0.0.1:0", worker_wait=120.0,
                                   faults=faults)
        procs = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", executor.address, "--name", f"sub{i}"],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            for i in range(2)
        ]
        try:
            with Session(technology=technology, seed=SEED,
                         executor=executor) as s:
                result = s.run(_spec("montecarlo"))
        finally:
            executor.close()
            for proc in procs:
                with contextlib.suppress(ProcessLookupError):
                    proc.kill()
                proc.wait(timeout=30)
        assert killed, "no worker was SIGKILLed"
        assert _norm(result) == golden("montecarlo")


# ----------------------------------------------------------------------
# Observability: scheduling-side spans only.
# ----------------------------------------------------------------------
class TestClusterTelemetry:
    def test_cluster_spans_and_identity_with_tracing(self, technology,
                                                     golden):
        tracer = Tracer()
        with _cluster(2) as (executor, _):
            with Session(technology=technology, seed=SEED, executor=executor,
                         tracer=tracer, metrics=True) as s:
                result = s.run(_spec("montecarlo"))
        names = {record["name"] for record in tracer.records}
        assert "cluster.dispatch" in names
        assert "cluster.lease" in names
        assert "shard.execute" in names
        # Telemetry never steers: traced cluster == untraced serial.
        assert _norm(result) == golden("montecarlo")
        telemetry = result.runtime.telemetry
        assert "repro_cluster_workers" in telemetry["metrics"]
        assert "repro_cluster_leases_in_flight" in telemetry["metrics"]
        assert "repro_cluster_retries_total" in telemetry["metrics"]
