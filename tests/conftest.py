"""Shared fixtures: one characterized technology for the whole test session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline import Technology, characterize_technology


@pytest.fixture(scope="session")
def technology() -> Technology:
    """Characterized 40-nm technology (reduced MC count: tests need
    stable sigmas, not publication-grade tails)."""
    return characterize_technology(n_measure=2500, seed=1234)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(99)
