"""Property-based validation of the MNA engine against graph theory.

A purely resistive network's node voltages obey the weighted graph
Laplacian; networkx provides an independent construction.  Hypothesis
drives random network topologies and values through both paths.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit, GROUND, DC, dc_operating_point
from repro.circuit.mna import (
    ConvergenceError,
    NewtonOptions,
    System,
    newton_solve,
)


def solve_with_networkx(edges, source_node, v_source):
    """Reference solution via the weighted Laplacian."""
    graph = nx.Graph()
    for (a, b, r) in edges:
        if graph.has_edge(a, b):
            # Parallel resistors combine.
            g_existing = graph[a][b]["weight"]
            graph[a][b]["weight"] = g_existing + 1.0 / r
        else:
            graph.add_edge(a, b, weight=1.0 / r)
    nodes = sorted(graph.nodes)
    laplacian = nx.laplacian_matrix(graph, nodelist=nodes, weight="weight")
    laplacian = laplacian.toarray().astype(float)

    # Dirichlet conditions: ground at 0, source at v_source.
    fixed = {0: 0.0, source_node: v_source}
    free = [n for n in nodes if n not in fixed]
    if not free:
        return {}
    idx = {n: i for i, n in enumerate(nodes)}
    free_idx = [idx[n] for n in free]
    fixed_idx = [idx[n] for n in fixed]
    fixed_vals = np.array([fixed[n] for n in fixed])

    a_ff = laplacian[np.ix_(free_idx, free_idx)]
    a_fc = laplacian[np.ix_(free_idx, fixed_idx)]
    v_free = np.linalg.solve(a_ff, -a_fc @ fixed_vals)
    return dict(zip(free, v_free))


@st.composite
def resistor_networks(draw):
    """Random connected resistor networks touching ground and a source."""
    n_nodes = draw(st.integers(3, 7))
    extra_edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_nodes - 1),
                st.integers(0, n_nodes - 1),
            ),
            max_size=8,
        )
    )
    resist = st.floats(10.0, 1e5)
    edges = []
    # Spanning chain guarantees connectivity 0-1-2-...-(n-1).
    for k in range(n_nodes - 1):
        edges.append((k, k + 1, draw(resist)))
    for (a, b) in extra_edges:
        if a != b:
            edges.append((a, b, draw(resist)))
    v_source = draw(st.floats(-5.0, 5.0))
    return n_nodes, edges, v_source


class TestAgainstLaplacian:
    @given(network=resistor_networks())
    @settings(max_examples=40, deadline=None)
    def test_matches_graph_laplacian(self, network):
        n_nodes, edges, v_source = network
        source_node = n_nodes - 1

        ckt = Circuit()
        ckt.add_vsource(f"n{source_node}", GROUND, DC(v_source), name="VS")
        for k, (a, b, r) in enumerate(edges):
            na = GROUND if a == 0 else f"n{a}"
            nb = GROUND if b == 0 else f"n{b}"
            ckt.add_resistor(na, nb, r, name=f"R{k}")
        solution = dc_operating_point(ckt)

        expected = solve_with_networkx(edges, source_node, v_source)
        for node, v_expected in expected.items():
            v_actual = solution[ckt.index_of(f"n{node}")]
            assert v_actual == pytest.approx(v_expected, abs=2e-4)

    @given(
        r1=st.floats(10.0, 1e5),
        r2=st.floats(10.0, 1e5),
        v=st.floats(-10.0, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_divider_property(self, r1, r2, v):
        ckt = Circuit()
        ckt.add_vsource("a", GROUND, DC(v), name="V1")
        ckt.add_resistor("a", "b", r1)
        ckt.add_resistor("b", GROUND, r2)
        sol = dc_operating_point(ckt)
        assert sol[ckt.index_of("b")] == pytest.approx(
            v * r2 / (r1 + r2), abs=1e-5 + 1e-4 * abs(v)
        )

    @given(
        resistances=st.lists(st.floats(100.0, 1e4), min_size=2, max_size=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_parallel_resistors_combine(self, resistances):
        ckt = Circuit()
        ckt.add_vsource("a", GROUND, DC(1.0), name="V1")
        for k, r in enumerate(resistances):
            ckt.add_resistor("a", GROUND, r, name=f"R{k}")
        sol = dc_operating_point(ckt)
        g_total = sum(1.0 / r for r in resistances)
        # Source supplies V * G_total.
        assert -sol[ckt["V1"].branch_index] == pytest.approx(
            g_total, rel=1e-4
        )


def _scalar_root_assemble(targets):
    """``F(v) = v^2 - targets`` on a 1-unknown system, batched."""
    targets = np.asarray(targets, dtype=float)

    def assemble(v):
        system = System(targets.shape, 1)
        system.add_f(0, v[..., 0] ** 2 - targets)
        system.add_j(0, 0, 2.0 * v[..., 0])
        return system

    return assemble


class TestConvergenceMasking:
    """Per-sample Newton masking: edge cases of the batched solver."""

    def test_batch_of_one_matches_scalar(self):
        assemble_b = _scalar_root_assemble(np.array([4.0]))
        assemble_s = _scalar_root_assemble(4.0)
        vb = newton_solve(assemble_b, np.full((1, 1), 3.0), 1)
        vs = newton_solve(assemble_s, np.full((1,), 3.0), 1)
        np.testing.assert_array_equal(vb[0], vs)
        assert vb[0, 0] == pytest.approx(2.0, abs=1e-6)

    def test_all_converged_early_stops_iterating(self):
        # A linear system converges on the first update; the loop must
        # stop long before max_iterations.
        def assemble(v):
            system = System((5,), 1)
            system.add_f(0, v[..., 0] - 1.0)
            system.add_j(0, 0, 1.0)
            return system

        opts = NewtonOptions(max_iterations=80, vlimit=10.0)
        v, info = newton_solve(
            assemble, np.zeros((5, 1)), 1, options=opts, return_info=True
        )
        assert np.all(info.converged)
        assert info.iterations <= 3
        np.testing.assert_allclose(v[:, 0], 1.0, atol=1e-9)

    def test_one_diverged_sample_does_not_corrupt_the_rest(self):
        # Sample 1's residual is NaN from the start: its update turns
        # non-finite and it must be frozen as failed while samples 0 and
        # 2 converge to their roots exactly as they would alone.
        targets = np.array([4.0, np.nan, 9.0])
        assemble = _scalar_root_assemble(targets)
        v0 = np.full((3, 1), 5.0)
        v, info = newton_solve(assemble, v0, 1, return_info=True)
        assert list(info.converged) == [True, False, True]
        assert v[0, 0] == pytest.approx(2.0, abs=1e-6)
        assert v[2, 0] == pytest.approx(3.0, abs=1e-6)
        # The healthy samples converged in the plain pass; the gmin
        # ladder triggered by the bad die must not have re-run them —
        # they keep bitwise the result of their standalone solves.
        for k in (0, 2):
            standalone = newton_solve(
                _scalar_root_assemble(targets[k]), np.full((1,), 5.0), 1
            )
            np.testing.assert_array_equal(v[k], standalone)
        # Without return_info the failure is a clean ConvergenceError.
        with pytest.raises(ConvergenceError):
            newton_solve(assemble, v0, 1)

    def test_frozen_samples_match_standalone_trajectories(self):
        # Mixed convergence speeds: the fast sample freezes early, yet
        # both finish bitwise-identical to their standalone solves.
        targets = np.array([1.0, 1e6])
        assemble = _scalar_root_assemble(targets)
        opts = NewtonOptions(vlimit=1e6, max_iterations=200)
        v = newton_solve(assemble, np.full((2, 1), 2.0), 1, options=opts)
        for k in range(2):
            vk = newton_solve(
                _scalar_root_assemble(targets[k]), np.full((1,), 2.0), 1,
                options=opts,
            )
            np.testing.assert_array_equal(v[k], vk)


class TestSingularJacobians:
    def test_zero_derivative_start_recovers(self):
        # F(v) = v^2 - 4 from v0 = 0: the Jacobian is singular at the
        # first iterate; gmin conditioning plus the vlimit clamp walk
        # the solve off the stationary point and it still finds a root.
        assemble = _scalar_root_assemble(4.0)
        v = newton_solve(assemble, np.zeros(1), 1)
        assert abs(v[0]) == pytest.approx(2.0, abs=1e-6)

    def test_permanently_singular_system_raises_cleanly(self):
        # A zero branch row (no gmin on branch rows) is singular at
        # every gmin rung: the ladder must surface ConvergenceError,
        # not a raw LinAlgError.
        def assemble(v):
            system = System((), 2)
            system.add_f(0, v[..., 0] - 1.0)
            system.add_j(0, 0, 1.0)
            return system

        with pytest.raises(ConvergenceError):
            newton_solve(assemble, np.zeros(2), 1)
