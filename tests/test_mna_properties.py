"""Property-based validation of the MNA engine against graph theory.

A purely resistive network's node voltages obey the weighted graph
Laplacian; networkx provides an independent construction.  Hypothesis
drives random network topologies and values through both paths.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit, GROUND, DC, dc_operating_point


def solve_with_networkx(edges, source_node, v_source):
    """Reference solution via the weighted Laplacian."""
    graph = nx.Graph()
    for (a, b, r) in edges:
        if graph.has_edge(a, b):
            # Parallel resistors combine.
            g_existing = graph[a][b]["weight"]
            graph[a][b]["weight"] = g_existing + 1.0 / r
        else:
            graph.add_edge(a, b, weight=1.0 / r)
    nodes = sorted(graph.nodes)
    laplacian = nx.laplacian_matrix(graph, nodelist=nodes, weight="weight")
    laplacian = laplacian.toarray().astype(float)

    # Dirichlet conditions: ground at 0, source at v_source.
    fixed = {0: 0.0, source_node: v_source}
    free = [n for n in nodes if n not in fixed]
    if not free:
        return {}
    idx = {n: i for i, n in enumerate(nodes)}
    free_idx = [idx[n] for n in free]
    fixed_idx = [idx[n] for n in fixed]
    fixed_vals = np.array([fixed[n] for n in fixed])

    a_ff = laplacian[np.ix_(free_idx, free_idx)]
    a_fc = laplacian[np.ix_(free_idx, fixed_idx)]
    v_free = np.linalg.solve(a_ff, -a_fc @ fixed_vals)
    return dict(zip(free, v_free))


@st.composite
def resistor_networks(draw):
    """Random connected resistor networks touching ground and a source."""
    n_nodes = draw(st.integers(3, 7))
    extra_edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_nodes - 1),
                st.integers(0, n_nodes - 1),
            ),
            max_size=8,
        )
    )
    resist = st.floats(10.0, 1e5)
    edges = []
    # Spanning chain guarantees connectivity 0-1-2-...-(n-1).
    for k in range(n_nodes - 1):
        edges.append((k, k + 1, draw(resist)))
    for (a, b) in extra_edges:
        if a != b:
            edges.append((a, b, draw(resist)))
    v_source = draw(st.floats(-5.0, 5.0))
    return n_nodes, edges, v_source


class TestAgainstLaplacian:
    @given(network=resistor_networks())
    @settings(max_examples=40, deadline=None)
    def test_matches_graph_laplacian(self, network):
        n_nodes, edges, v_source = network
        source_node = n_nodes - 1

        ckt = Circuit()
        ckt.add_vsource(f"n{source_node}", GROUND, DC(v_source), name="VS")
        for k, (a, b, r) in enumerate(edges):
            na = GROUND if a == 0 else f"n{a}"
            nb = GROUND if b == 0 else f"n{b}"
            ckt.add_resistor(na, nb, r, name=f"R{k}")
        solution = dc_operating_point(ckt)

        expected = solve_with_networkx(edges, source_node, v_source)
        for node, v_expected in expected.items():
            v_actual = solution[ckt.index_of(f"n{node}")]
            assert v_actual == pytest.approx(v_expected, abs=2e-4)

    @given(
        r1=st.floats(10.0, 1e5),
        r2=st.floats(10.0, 1e5),
        v=st.floats(-10.0, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_divider_property(self, r1, r2, v):
        ckt = Circuit()
        ckt.add_vsource("a", GROUND, DC(v), name="V1")
        ckt.add_resistor("a", "b", r1)
        ckt.add_resistor("b", GROUND, r2)
        sol = dc_operating_point(ckt)
        assert sol[ckt.index_of("b")] == pytest.approx(
            v * r2 / (r1 + r2), abs=1e-5 + 1e-4 * abs(v)
        )

    @given(
        resistances=st.lists(st.floats(100.0, 1e4), min_size=2, max_size=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_parallel_resistors_combine(self, resistances):
        ckt = Circuit()
        ckt.add_vsource("a", GROUND, DC(1.0), name="V1")
        for k, r in enumerate(resistances):
            ckt.add_resistor("a", GROUND, r, name=f"R{k}")
        sol = dc_operating_point(ckt)
        g_total = sum(1.0 / r for r in resistances)
        # Source supplies V * G_total.
        assert -sol[ckt["V1"].branch_index] == pytest.approx(
            g_total, rel=1e-4
        )
