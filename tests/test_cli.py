"""The python -m repro command-line entry point (registry-driven)."""

import json

import pytest

from repro.__main__ import main
from repro.api import load_all, names


class TestCLI:
    def test_list_renders_whole_registry(self, capsys):
        # One line per registry entry, in registration order (the
        # canonical fifteen-artifact set itself is asserted in
        # tests/test_api.py; don't duplicate the literal here).
        assert main(["list"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        load_all()
        assert [line.split()[0] for line in lines] == names()

    def test_list_json_is_a_machine_readable_registry_dump(self, capsys):
        assert main(["list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        load_all()
        assert [e["name"] for e in entries] == names()
        for entry in entries:
            assert set(entry) >= {"name", "title", "module", "quick", "full"}
            assert isinstance(entry["quick"], dict)
            assert isinstance(entry["full"], dict)
        # The presets are the registry's, verbatim.
        fig5 = next(e for e in entries if e["name"] == "fig5")
        assert fig5["quick"] == {"n_samples": 150}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figX"])

    def test_runs_cheap_experiment(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "done in" in out

    def test_runs_table2(self, capsys):
        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "alpha1" in out

    def test_json_envelope(self, capsys):
        assert main(["fig2", "--quick", "--json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["experiment"] == "fig2"
        assert decoded["spec"]["kind"] == "ExperimentSpec"
        assert decoded["backend"] == "auto"
        assert "payload" in decoded

    def test_json_multi_experiment_is_jsonl(self, capsys):
        assert main(["fig2", "table2", "--quick", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["experiment"] for line in lines] == [
            "fig2", "table2"
        ]

    def test_seed_and_backend_flags(self, capsys):
        assert main(["fig2", "--quick", "--seed", "7",
                     "--backend", "generic", "--json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["seed"] == 7
        assert decoded["backend"] == "generic"
