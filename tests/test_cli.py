"""The python -m repro command-line entry point."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig9", "table4"):
            assert name in out

    def test_registry_complete(self):
        # One entry per paper artifact.
        expected = {f"fig{k}" for k in range(1, 10)}
        expected |= {"table2", "table3", "table4"}
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figX"])

    def test_runs_cheap_experiment(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "done in" in out

    def test_runs_table2(self, capsys):
        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "alpha1" in out
