"""Distribution utilities: summaries, QQ, Gaussianity metrics."""

import numpy as np
import pytest

from repro.stats.distributions import (
    histogram_density,
    ks_between,
    normal_pdf_overlay,
    qq_data,
    qq_tail_nonlinearity,
    summarize,
)


@pytest.fixture()
def gaussian_sample(rng):
    return 3.0 + 0.5 * rng.standard_normal(20000)


@pytest.fixture()
def lognormal_sample(rng):
    return np.exp(0.8 * rng.standard_normal(20000))


class TestSummarize:
    def test_gaussian_moments(self, gaussian_sample):
        s = summarize(gaussian_sample)
        assert s.mean == pytest.approx(3.0, abs=0.02)
        assert s.std == pytest.approx(0.5, rel=0.03)
        assert abs(s.skewness) < 0.08
        assert abs(s.excess_kurtosis) < 0.15
        assert s.ks_statistic < 0.01

    def test_sigma_over_mu(self, gaussian_sample):
        s = summarize(gaussian_sample)
        assert s.sigma_over_mu == pytest.approx(0.5 / 3.0, rel=0.05)

    def test_lognormal_flagged_skewed(self, lognormal_sample):
        s = summarize(lognormal_sample)
        assert s.skewness > 1.0
        assert s.ks_statistic > 0.02

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, 2.0])


class TestHistogramAndOverlay:
    def test_density_normalized(self, gaussian_sample):
        centers, density = histogram_density(gaussian_sample, bins=50)
        width = centers[1] - centers[0]
        assert np.sum(density) * width == pytest.approx(1.0, rel=1e-6)

    def test_overlay_peaks_at_mean(self, gaussian_sample):
        grid, pdf = normal_pdf_overlay(gaussian_sample)
        assert grid[np.argmax(pdf)] == pytest.approx(3.0, abs=0.05)


class TestQQ:
    def test_gaussian_qq_is_linear(self, gaussian_sample):
        z, x = qq_data(gaussian_sample)
        slope, intercept = np.polyfit(z, x, 1)
        assert slope == pytest.approx(0.5, rel=0.03)
        assert intercept == pytest.approx(3.0, abs=0.02)
        assert qq_tail_nonlinearity(gaussian_sample) < 0.1

    def test_lognormal_qq_is_curved(self, lognormal_sample):
        assert qq_tail_nonlinearity(lognormal_sample) > 0.3

    def test_qq_sorted_output(self, gaussian_sample):
        z, x = qq_data(gaussian_sample)
        assert np.all(np.diff(z) > 0.0)
        assert np.all(np.diff(x) >= 0.0)

    def test_qq_too_few_samples(self):
        with pytest.raises(ValueError):
            qq_data([1.0, 2.0, 3.0])


class TestKSBetween:
    def test_same_distribution_small(self, rng):
        a = rng.standard_normal(4000)
        b = rng.standard_normal(4000)
        assert ks_between(a, b) < 0.05

    def test_shifted_distribution_large(self, rng):
        a = rng.standard_normal(4000)
        b = rng.standard_normal(4000) + 1.0
        assert ks_between(a, b) > 0.3
