"""Ring oscillator cell."""

import numpy as np
import pytest

from repro.cells import MonteCarloDeviceFactory, NominalDeviceFactory
from repro.cells.ringosc import RingOscSpec, ring_frequency


class TestSpec:
    def test_rejects_even_stage_count(self):
        with pytest.raises(ValueError):
            RingOscSpec(n_stages=4)

    def test_rejects_tiny_ring(self):
        with pytest.raises(ValueError):
            RingOscSpec(n_stages=1)


class TestOscillation:
    @pytest.fixture(scope="class")
    def nominal(self, technology):
        return NominalDeviceFactory(technology, "vs")

    def test_frequency_decade(self, nominal):
        f = ring_frequency(nominal, RingOscSpec(n_stages=5))
        # 5-stage 40-nm ring: tens of GHz.
        assert 5e9 < float(f) < 2e11

    def test_longer_ring_is_slower(self, nominal):
        f5 = ring_frequency(nominal, RingOscSpec(n_stages=5))
        f7 = ring_frequency(
            nominal, RingOscSpec(n_stages=7),
            n_periods=4.0,
        )
        # Period scales with stage count: f7 ~ (5/7) f5.
        assert float(f7) == pytest.approx(float(f5) * 5.0 / 7.0, rel=0.15)

    def test_monte_carlo_spread(self, technology):
        mc = MonteCarloDeviceFactory(technology, 20, model="vs", seed=13)
        f = ring_frequency(mc)
        assert f.shape == (20,)
        assert np.isnan(f).sum() == 0
        rel = np.std(f, ddof=1) / np.mean(f)
        # Per-stage variation averages over 2N transitions: small but
        # nonzero relative spread.
        assert 0.003 < rel < 0.2
