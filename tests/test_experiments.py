"""Experiment modules: structure and report rendering (cheap runs only).

The heavy circuit experiments are exercised by the benchmark harness;
here we cover the device-level experiments end to end plus every
``report`` renderer's contract (headers, units, row counts).
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1_iv_fit,
    fig2_bpv_consistency,
    fig3_idsat_mismatch,
    fig4_scatter_ellipses,
    table2_alphas,
    table3_device_sigma,
)
from repro.experiments.common import format_table, si


class TestCommonHelpers:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # All rows padded to equal width per column.
        assert lines[2].startswith("1  ")

    def test_si_formatting(self):
        assert si(5.4e-12, "s") == "5.4 ps"
        assert si(2.2e-6, "A") == "2.2 uA"
        assert si(0.0, "V") == "0 V"
        assert si(1.73e11, "Hz") == "173 GHz"


class TestFig1:
    def test_run_and_report(self):
        result = fig1_iv_fit.run("nmos")
        assert result.rms_log_error < 0.15
        text = fig1_iv_fit.report(result)
        assert "Fig. 1" in text
        assert "decades" in text


class TestFig2:
    def test_within_paper_band(self):
        result = fig2_bpv_consistency.run("nmos")
        assert result.max_abs_percent < 10.0
        assert set(result.percent_diff) == {"vt0", "leff", "weff"}

    def test_report_rows_match_widths(self):
        result = fig2_bpv_consistency.run("pmos")
        text = fig2_bpv_consistency.report(result)
        assert text.count("\n") >= len(result.widths_nm) + 2


class TestFig3:
    def test_linear_matches_mc(self):
        result = fig3_idsat_mismatch.run(n_samples=1200,
                                         widths_nm=(300.0, 1000.0))
        np.testing.assert_allclose(result.total_linear, result.total_mc,
                                   rtol=0.15)

    def test_pelgrom_width_scaling(self):
        result = fig3_idsat_mismatch.run(n_samples=1200,
                                         widths_nm=(150.0, 600.0))
        # 4x area -> 2x smaller relative sigma.
        assert result.total_linear[0] / result.total_linear[1] == (
            pytest.approx(2.0, rel=0.2)
        )


class TestFig4:
    def test_cross_coverage_sane(self):
        result = fig4_scatter_ellipses.run(n_samples=600)
        assert 0.9 < result.cross_coverage[3.0] <= 1.0
        text = fig4_scatter_ellipses.report(result)
        assert "corr" in text


class TestTable2:
    def test_structure(self):
        result = table2_alphas.run()
        for pol in ("nmos", "pmos"):
            assert result.extracted[pol].alpha1_v_nm > 0.0
        text = table2_alphas.report(result)
        assert "alpha4" in text

    def test_extraction_tracks_truth(self):
        result = table2_alphas.run()
        for pol in ("nmos", "pmos"):
            ext = result.extracted[pol]
            truth = result.truth[pol]
            assert ext.alpha2_nm == pytest.approx(truth.alpha2_nm, rel=0.25)


class TestTable3:
    def test_sigma_match_and_report(self):
        result = table3_device_sigma.run(n_samples=1500)
        assert result.worst_relative_mismatch() < 0.15
        text = table3_device_sigma.report(result)
        # 3 device classes x 2 polarities = 6 data rows.
        assert len(result.rows) == 6
        assert "paper" in text
