"""Tests for the observability layer (PR 8): tracing, metrics, logging.

The load-bearing property throughout is the scheduling-side contract:
telemetry *observes* runs and never steers them.  The determinism
matrix at the bottom is the executable statement of that contract —
envelopes are bit-identical (after ``scrub_envelope``) with tracing and
metrics enabled vs disabled, at 1 and 2 workers, for every spec family
the matrix names.
"""

import json
import logging
import re

import numpy as np
import pytest

from repro.api import Execution, MonteCarlo, Session, Sweep, Yield
from repro.api.serialize import dumps
from repro.obs import (
    MetricsRegistry,
    Tracer,
    activate,
    configure_logging,
    current_tracer,
    default_registry,
    event,
    get_logger,
    log_event,
    span,
)
from repro.service.store import scrub_envelope
from repro.stats import ParameterMetric

SEED = 20130318


# ----------------------------------------------------------------------
# Tracer.
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sorted(tracer.records, key=lambda r: r["name"])
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert inner["dur_s"] <= outer["dur_s"]

    def test_set_attaches_attributes_mid_span(self):
        tracer = Tracer()
        with tracer.span("work", shard=3) as sp:
            sp.set(samples=128)
        (record,) = tracer.records
        assert record["args"] == {"shard": 3, "samples": 128}

    def test_name_is_positional_only(self):
        # An attribute literally called "name" must not collide with
        # the span's own name parameter.
        tracer = Tracer()
        with tracer.span("experiment.run", name="fig2"):
            pass
        (record,) = tracer.records
        assert record["name"] == "experiment.run"
        assert record["args"]["name"] == "fig2"

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = tracer.records
        assert record["args"]["error"] == "RuntimeError"

    def test_module_helpers_noop_without_activation(self):
        assert current_tracer() is None
        with span("ignored", x=1) as sp:
            sp.set(y=2)   # must be silently absorbed
        event("also-ignored")

    def test_activation_routes_module_helpers(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
            with span("traced"):
                event("ping", n=1)
        assert current_tracer() is None
        names = [r["name"] for r in tracer.records]
        assert names == ["ping", "traced"]  # event appended before exit
        ping = tracer.records[0]
        traced = tracer.records[1]
        assert ping["parent"] == traced["id"]

    def test_activate_none_is_noop(self):
        with activate(None):
            assert current_tracer() is None

    def test_add_span_synthesizes_worker_attribution(self):
        tracer = Tracer()
        tracer.add_span("shard.execute", 0.5, 0.25, pid=4242, worker_pid=4242)
        (record,) = tracer.records
        assert record["pid"] == 4242
        assert record["start_s"] == 0.5 and record["dur_s"] == 0.25
        assert record["args"]["worker_pid"] == 4242

    def test_summary_aggregates_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("wave"):
                pass
        mark = tracer.mark()
        with tracer.span("wave"):
            pass
        assert tracer.summary()["wave"]["count"] == 4
        assert tracer.summary(since=mark)["wave"]["count"] == 1

    def test_jsonl_export_one_object_per_line(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.event("b")
        lines = tracer.to_jsonl().strip().split("\n")
        assert len(lines) == 2
        assert {json.loads(line)["name"] for line in lines} == {"a", "b"}

    def test_chrome_export_shape(self):
        tracer = Tracer()
        with tracer.span("region"):
            pass
        tracer.event("instant")
        doc = tracer.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        instant = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == 1 and "dur" in complete[0]
        assert len(instant) == 1 and instant[0]["s"] == "t"
        json.dumps(doc)  # must be a pure-JSON document

    def test_write_picks_format_from_suffix(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.trace.json"
        tracer.write(str(jsonl))
        tracer.write(str(chrome))
        assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "x"
        assert json.loads(chrome.read_text())["traceEvents"]


# ----------------------------------------------------------------------
# Metrics.
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("jobs")
        g.set(5)
        g.dec(2)
        assert g.value == 3.0

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            h.observe(value)
        assert h.count == 4
        assert h.sum == pytest.approx(6.25)
        assert h.cumulative() == [("0.1", 1), ("1", 3), ("+Inf", 4)]

    def test_series_are_label_keyed(self):
        reg = MetricsRegistry()
        a = reg.counter("req", labels={"route": "/jobs"})
        b = reg.counter("req", labels={"route": "/healthz"})
        same = reg.counter("req", labels={"route": "/jobs"})
        assert a is same and a is not b

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_snapshot_is_plain_json(self):
        reg = MetricsRegistry()
        reg.counter("c", "help me").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["series"][0]["value"] == 2
        assert snap["h"]["series"][0]["buckets"] == {"1": 1, "+Inf": 1}

    def test_prometheus_exposition_parses(self):
        reg = MetricsRegistry()
        reg.counter("repro_req_total", "Requests",
                    labels={"route": "/jobs", "status": "200"}).inc(7)
        reg.gauge("repro_jobs", "Jobs", labels={"state": "running"}).set(1)
        reg.histogram("repro_lat_seconds", "Latency",
                      buckets=(0.1, 1.0)).observe(0.25)
        text = reg.to_prometheus()
        _assert_valid_prometheus(text)
        assert '# TYPE repro_req_total counter' in text
        assert 'repro_req_total{route="/jobs",status="200"} 7' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_lat_seconds_sum 0.25" in text

    def test_reset_zeroes_in_place(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc(9)
        reg.reset()
        assert c.value == 0.0           # the cached handle stays live
        c.inc()
        assert reg.counter("n") is c

    def test_default_registry_is_process_singleton(self):
        assert default_registry() is default_registry()


# The label block is matched greedily to the *last* closing brace:
# label values may themselves contain braces (route="/jobs/{fp}").
_PROM_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? -?[0-9+.eE\-Inf]+)$"
)


def _assert_valid_prometheus(text: str) -> None:
    """Line-level validation of the text exposition format."""
    assert text.endswith("\n")
    for line in text.strip().split("\n"):
        assert _PROM_LINE.match(line), f"bad exposition line: {line!r}"


# ----------------------------------------------------------------------
# Structured logging.
# ----------------------------------------------------------------------
class TestLogging:
    def test_one_json_object_per_line(self, capsys):
        import io

        stream = io.StringIO()
        configure_logging("info", stream=stream)
        try:
            log_event(get_logger("service.http"), "http.request",
                      method="GET", path="/healthz", status=200)
            line = stream.getvalue().strip()
            document = json.loads(line)
            assert document["event"] == "http.request"
            assert document["logger"] == "repro.service.http"
            assert document["method"] == "GET" and document["status"] == 200
            assert document["level"] == "info"
        finally:
            _teardown_logging()

    def test_configure_is_idempotent(self):
        import io

        stream = io.StringIO()
        configure_logging("info", stream=stream)
        configure_logging("info", stream=stream)
        try:
            log_event(get_logger("x"), "once")
            assert stream.getvalue().count("\n") == 1
        finally:
            _teardown_logging()

    def test_level_threshold(self):
        import io

        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        try:
            log_event(get_logger("x"), "dropped")                # info
            log_event(get_logger("x"), "kept", level=logging.ERROR)
            lines = stream.getvalue().strip().splitlines()
            assert len(lines) == 1
            assert json.loads(lines[0])["event"] == "kept"
        finally:
            _teardown_logging()

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure_logging("loud")


def _teardown_logging():
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_json", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True


# ----------------------------------------------------------------------
# Telemetry attachment + wall-time population.
# ----------------------------------------------------------------------
def _mc_spec(workers=None):
    execution = None if workers is None else Execution(
        workers=workers, shard_size=16)
    return MonteCarlo(n_samples=48, execution=execution)


def _yield_spec(workers=None):
    execution = None if workers is None else Execution(
        workers=workers, shard_size=64)
    return Yield(
        metric=ParameterMetric("vt0"), threshold=-3.0, shifts={"vt0": -2.0},
        n_samples=192, n_rounds=1, n_per_round=128, block_size=64,
        execution=execution,
    )


def _sweep_spec(workers=None):
    return Sweep(_mc_spec(workers), over={"w_nm": (600.0, 900.0)})


class TestTelemetryAttachment:
    def test_traced_run_attaches_span_summary(self, technology):
        tracer = Tracer()
        session = Session(technology=technology, seed=SEED, tracer=tracer,
                          metrics=True)
        try:
            result = session.run(_mc_spec(workers=1))
        finally:
            session.close()
        telemetry = result.runtime.telemetry
        assert set(telemetry) == {"spans", "metrics"}
        assert "run.wave" in telemetry["spans"]
        assert "shard.execute" in telemetry["spans"]
        assert "repro_waves_total" in telemetry["metrics"]
        # The live tracer kept recording the same spans.
        assert any(r["name"] == "session.run" for r in tracer.records)

    def test_untraced_run_has_no_telemetry(self, technology):
        session = Session(technology=technology, seed=SEED)
        try:
            result = session.run(_mc_spec(workers=1))
        finally:
            session.close()
        assert result.runtime.telemetry is None

    def test_scrub_strips_telemetry(self, technology):
        session = Session(technology=technology, seed=SEED, tracer=Tracer())
        try:
            result = session.run(_mc_spec(workers=1))
        finally:
            session.close()
        assert scrub_envelope(result).runtime is None

    def test_wall_time_populated_on_every_path(self, technology):
        """Satellite audit: no envelope path leaves wall_time_s at 0.0."""
        session = Session(technology=technology, seed=SEED)
        try:
            mc = session.run(_mc_spec())            # legacy unsharded
            sharded = session.run(_mc_spec(workers=1))
            sweep = session.run(_sweep_spec())
            yld = session.run(_yield_spec())
        finally:
            session.close()
        assert mc.wall_time_s > 0.0
        assert sharded.wall_time_s > 0.0
        assert yld.wall_time_s > 0.0
        assert sweep.wall_time_s > 0.0
        for point in sweep.points:
            assert point.wall_time_s > 0.0


# ----------------------------------------------------------------------
# Determinism matrix: observability never perturbs results.
# ----------------------------------------------------------------------
class TestDeterminismMatrix:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("family", ["montecarlo", "sweep", "yield"])
    def test_envelopes_bit_identical_with_and_without_telemetry(
            self, technology, family, workers):
        build = {
            "montecarlo": _mc_spec,
            "sweep": _sweep_spec,
            "yield": _yield_spec,
        }[family]
        spec = build(workers=workers)

        plain_session = Session(technology=technology, seed=SEED)
        try:
            plain = plain_session.run(spec)
        finally:
            plain_session.close()

        traced_session = Session(technology=technology, seed=SEED,
                                 tracer=Tracer(), metrics=True)
        try:
            traced = traced_session.run(spec)
        finally:
            traced_session.close()

        assert dumps(scrub_envelope(plain)) == dumps(scrub_envelope(traced))
