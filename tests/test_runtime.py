"""The sharded parallel runtime.

Pins the subsystem's central contract — sharded output is bit-identical
to the serial run at every worker count, for device Monte-Carlo,
importance sampling, circuit-level factory maps and SSTA graph sampling
— plus the streaming accumulators (merge correctness and associativity),
adaptive stopping (including its worker-count invariance), checkpoint
resume, and the executor degradation path for unpicklable tasks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Execution, ImportanceSampling, MonteCarlo, Session
from repro.runtime import (
    FailureAccumulator,
    ParallelExecutor,
    QuantileSketch,
    SerialExecutor,
    StopRule,
    StreamStats,
    TargetAccumulator,
    WeightedFailureAccumulator,
    load_checkpoint,
    plan_shards,
    resolve_executor,
    run_sharded,
    shard_rng,
)
from repro.ssta import GaussianDelay, TimingGraph, monte_carlo_arrival

RTOL = 1e-9


@pytest.fixture()
def session(technology) -> Session:
    return Session(technology=technology, seed=20260101)


def _vt0_metric(params):
    """Module-level (picklable) importance-sampling metric."""
    return np.asarray(params.vt0)


def _vt0_work(factory):
    """Module-level (picklable) factory-map workload."""
    return np.asarray(factory("nmos", 600.0, 40.0).params.vt0)


def _multicolumn_work(factory):
    """Factory-map workload with a (n, 3) output (sample axis first)."""
    vt0 = np.asarray(factory("nmos", 600.0, 40.0).params.vt0)
    return np.stack([vt0, 2.0 * vt0, 3.0 * vt0], axis=1)


class _AliasedPayloadTask:
    """Picklable task whose two fields alias one object.

    With the pickle memo enabled the second reference serializes as a
    backreference, so the memo-enabled and memo-free content digests
    differ — the checkpoint-migration hazard the legacy-resume test
    exercises.
    """

    def __init__(self, a, b):
        self.a = a
        self.b = b

    def __call__(self, shard):
        return float(shard.n_samples)


class _CountAccumulator:
    """Minimal checkpointable accumulator (state round-trip + count)."""

    def __init__(self, n: int = 0):
        self.n = n

    def state(self):
        return {"n": self.n}

    @classmethod
    def from_state(cls, state):
        return cls(int(state["n"]))


def _count_accumulate(accumulator, payload):
    accumulator.n += int(payload)


# ----------------------------------------------------------------------
# Shard planning.
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_partition_covers_run_exactly(self):
        plan = plan_shards(1000, 128, base_seed=7)
        assert [s.n_samples for s in plan] == [128] * 7 + [104]
        assert plan.shards[0].start == 0
        assert plan.shards[-1].stop == 1000
        assert all(
            a.stop == b.start for a, b in zip(plan.shards, plan.shards[1:])
        )

    def test_none_shard_size_is_single_shard(self):
        plan = plan_shards(500, None, base_seed=7)
        assert plan.n_shards == 1
        assert plan.shards[0].n_samples == 500

    def test_shard_streams_depend_only_on_seed_and_index(self):
        a = plan_shards(1000, 100, base_seed=3).shards[4]
        b = plan_shards(2000, 100, base_seed=3).shards[4]
        np.testing.assert_array_equal(
            a.rng().standard_normal(8), b.rng().standard_normal(8)
        )
        np.testing.assert_array_equal(
            shard_rng(3, 4).standard_normal(8), a.rng().standard_normal(8)
        )

    def test_distinct_shards_get_distinct_streams(self):
        plan = plan_shards(256, 64, base_seed=11)
        draws = [s.rng().standard_normal(4) for s in plan]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i], draws[j])

    def test_invalid_plans_raise(self):
        with pytest.raises(ValueError):
            plan_shards(0, 10, base_seed=0)
        with pytest.raises(ValueError):
            plan_shards(10, 0, base_seed=0)


# ----------------------------------------------------------------------
# Streaming accumulators.
# ----------------------------------------------------------------------
class TestStreamStats:
    def test_matches_numpy_reductions(self, rng):
        values = rng.standard_normal(501)
        acc = StreamStats()
        for chunk in np.array_split(values, 7):
            acc.update(chunk)
        assert acc.n == 501
        assert acc.mean == pytest.approx(np.mean(values), rel=RTOL)
        assert acc.std() == pytest.approx(np.std(values, ddof=1), rel=RTOL)
        assert acc.min == np.min(values)
        assert acc.max == np.max(values)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=40
            ),
            min_size=3,
            max_size=3,
        )
    )
    def test_merge_is_associative_and_exactly_reduces(self, chunks):
        def stats_of(chunk):
            acc = StreamStats()
            acc.update(np.asarray(chunk))
            return acc

        left = stats_of(chunks[0]).merge(stats_of(chunks[1])).merge(stats_of(chunks[2]))
        right = stats_of(chunks[0]).merge(stats_of(chunks[1]).merge(stats_of(chunks[2])))
        everything = np.concatenate([np.asarray(ch) for ch in chunks])
        assert left.n == right.n == everything.size
        assert left.mean == pytest.approx(right.mean, rel=1e-9, abs=1e-9)
        assert left.m2 == pytest.approx(right.m2, rel=1e-7, abs=1e-6)
        assert left.mean == pytest.approx(float(np.mean(everything)),
                                          rel=1e-9, abs=1e-9)
        assert left.min == float(np.min(everything))
        assert left.max == float(np.max(everything))

    def test_state_roundtrip(self, rng):
        acc = StreamStats().update(rng.standard_normal(32))
        clone = StreamStats.from_state(acc.state())
        assert clone.state() == acc.state()


class TestFailureAccumulator:
    def test_merge_matches_batch_formulas(self, rng):
        weights = rng.exponential(size=400)
        fails = rng.random(400) < 0.2
        contrib = weights * fails

        merged = FailureAccumulator()
        for idx in range(4):
            part = FailureAccumulator().update(
                fails[idx * 100:(idx + 1) * 100],
                weights[idx * 100:(idx + 1) * 100],
            )
            merged.merge(part)
        assert merged.n_samples == 400
        assert merged.n_fail == int(np.count_nonzero(fails))
        assert merged.probability == pytest.approx(np.mean(contrib), rel=RTOL)
        assert merged.std_error == pytest.approx(
            np.std(contrib, ddof=1) / np.sqrt(400), rel=1e-7
        )

    def test_zero_failures_relative_error_is_inf(self):
        acc = FailureAccumulator().update(np.zeros(100, dtype=bool))
        assert acc.probability == 0.0
        assert acc.relative_error() == np.inf


#: One weighted-failure sample: (importance weight, fail flag, sigma
#: deviation).  Weights stay non-negative like real density ratios.
_WEIGHTED_SAMPLE = st.tuples(
    st.floats(0.0, 1e3, allow_nan=False),
    st.booleans(),
    st.floats(-6.0, 6.0, allow_nan=False),
)


def _weighted_acc(chunk) -> WeightedFailureAccumulator:
    weights = np.asarray([w for w, _, _ in chunk], dtype=float)
    fails = np.asarray([f for _, f, _ in chunk], dtype=bool)
    x = np.asarray([x for _, _, x in chunk], dtype=float)
    return WeightedFailureAccumulator().update(
        fails, weights, deviations={"vt0": x}
    )


class TestWeightedFailureAccumulator:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.lists(_WEIGHTED_SAMPLE, min_size=1, max_size=30),
                    min_size=3, max_size=3))
    def test_merge_is_associative(self, chunks):
        a, b, c = chunks
        left = _weighted_acc(a).merge(_weighted_acc(b)).merge(_weighted_acc(c))
        right = _weighted_acc(a).merge(_weighted_acc(b).merge(_weighted_acc(c)))
        assert left.n_samples == right.n_samples
        assert left.n_fail == right.n_fail
        assert left.probability == pytest.approx(right.probability,
                                                 rel=1e-9, abs=1e-12)
        assert left.sum_w == pytest.approx(right.sum_w, rel=1e-9, abs=1e-12)
        assert left.sum_w2 == pytest.approx(right.sum_w2, rel=1e-9, abs=1e-12)
        assert left.fail_w == pytest.approx(right.fail_w, rel=1e-9, abs=1e-12)
        assert left.fail_wx.get("vt0", 0.0) == pytest.approx(
            right.fail_wx.get("vt0", 0.0), rel=1e-9, abs=1e-12
        )
        assert left.fail_wx2.get("vt0", 0.0) == pytest.approx(
            right.fail_wx2.get("vt0", 0.0), rel=1e-9, abs=1e-12
        )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.lists(_WEIGHTED_SAMPLE, min_size=1, max_size=30),
                    min_size=2, max_size=4))
    def test_shard_merge_matches_single_stream_fold(self, chunks):
        # Shard-local accumulators merged in shard order must equal one
        # accumulator folding the same chunks sequentially — the
        # identity that makes the runtime's reduce worker-count
        # invariant.
        merged = WeightedFailureAccumulator()
        for chunk in chunks:
            merged.merge(_weighted_acc(chunk))
        folded = WeightedFailureAccumulator()
        for chunk in chunks:
            folded.update(
                np.asarray([f for _, f, _ in chunk], dtype=bool),
                np.asarray([w for w, _, _ in chunk], dtype=float),
                deviations={"vt0": np.asarray([x for _, _, x in chunk])},
            )
        assert merged.n_samples == folded.n_samples
        assert merged.n_fail == folded.n_fail
        assert merged.probability == pytest.approx(folded.probability,
                                                   rel=1e-9, abs=1e-12)
        assert merged.fail_w == pytest.approx(folded.fail_w,
                                              rel=1e-9, abs=1e-12)
        assert merged.fail_wx.get("vt0", 0.0) == pytest.approx(
            folded.fail_wx.get("vt0", 0.0), rel=1e-9, abs=1e-12
        )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.lists(_WEIGHTED_SAMPLE, min_size=1, max_size=30),
                    min_size=1, max_size=4))
    def test_merged_ess_matches_kish_formula(self, chunks):
        merged = WeightedFailureAccumulator()
        for chunk in chunks:
            merged.merge(_weighted_acc(chunk))
        weights = np.asarray([w for chunk in chunks for w, _, _ in chunk])
        sum_w2 = float(np.sum(weights**2))
        if sum_w2 == 0.0:
            assert merged.effective_samples == 0.0
        else:
            assert merged.effective_samples == pytest.approx(
                float(np.sum(weights)) ** 2 / sum_w2, rel=1e-9
            )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_WEIGHTED_SAMPLE, min_size=1, max_size=60))
    def test_shift_estimate_is_weighted_failure_centroid(self, chunk):
        acc = _weighted_acc(chunk)
        weights = np.asarray([w for w, _, _ in chunk], dtype=float)
        fails = np.asarray([f for _, f, _ in chunk], dtype=bool)
        x = np.asarray([x for _, _, x in chunk], dtype=float)
        mass = float(np.sum(weights[fails]))
        if mass <= 0.0:
            assert acc.shift_estimate() == {}
        else:
            assert acc.shift_estimate()["vt0"] == pytest.approx(
                float(np.sum(weights[fails] * x[fails])) / mass,
                rel=1e-9, abs=1e-12,
            )

    def test_probability_path_identical_to_plain_accumulator(self, rng):
        # The inherited estimate must be bit-identical to
        # FailureAccumulator for the same update sequence — the property
        # behind the Yield zero-round == ImportanceSampling identity.
        weights = rng.exponential(size=300)
        fails = rng.random(300) < 0.3
        x = rng.standard_normal(300)
        plain = FailureAccumulator()
        weighted = WeightedFailureAccumulator()
        for lo in range(0, 300, 100):
            plain.update(fails[lo:lo + 100], weights[lo:lo + 100])
            weighted.update(fails[lo:lo + 100], weights[lo:lo + 100],
                            deviations={"vt0": x[lo:lo + 100]})
        assert weighted.probability == plain.probability
        assert weighted.std_error == plain.std_error
        assert weighted.effective_samples == plain.effective_samples
        assert weighted.n_fail == plain.n_fail

    def test_state_roundtrip(self, rng):
        acc = WeightedFailureAccumulator().update(
            rng.random(64) < 0.25,
            rng.exponential(size=64),
            deviations={"vt0": rng.standard_normal(64),
                        "leff": rng.standard_normal(64)},
        )
        clone = WeightedFailureAccumulator.from_state(acc.state())
        assert clone.state() == acc.state()
        assert clone.shift_estimate() == acc.shift_estimate()


class TestQuantileSketch:
    def test_exact_below_capacity(self, rng):
        values = rng.standard_normal(100)
        sketch = QuantileSketch(k=256).update(values)
        assert sketch.query(0.5) == pytest.approx(
            np.quantile(values, 0.5, method="inverted_cdf"), abs=1e-12
        )

    def test_rank_error_bounded_after_compaction(self, rng):
        values = rng.standard_normal(20000)
        sketch = QuantileSketch(k=128)
        for chunk in np.array_split(values, 37):
            sketch.update(chunk)
        assert sketch.count == values.size
        for q in (0.1, 0.5, 0.9, 0.99):
            estimate = sketch.query(q)
            # Rank of the estimate must be within a few k-ths of q.
            rank = np.mean(values <= estimate)
            assert abs(rank - q) < 0.05

    def test_merge_preserves_count_and_accuracy(self, rng):
        values = rng.standard_normal(8000)
        parts = np.array_split(values, 3)
        sketches = [QuantileSketch(k=128).update(p) for p in parts]
        left = QuantileSketch(k=128)
        left.merge(sketches[0]).merge(sketches[1]).merge(sketches[2])
        assert left.count == values.size
        for q in (0.25, 0.75):
            rank = np.mean(values <= left.query(q))
            assert abs(rank - q) < 0.05

    def test_state_roundtrip(self, rng):
        sketch = QuantileSketch(k=64).update(rng.standard_normal(1000))
        clone = QuantileSketch.from_state(sketch.state())
        assert clone.query(0.5) == sketch.query(0.5)
        assert clone.count == sketch.count


# ----------------------------------------------------------------------
# Bit-identity across worker counts (the headline contract).
# ----------------------------------------------------------------------
class TestWorkerCountInvariance:
    WORKER_COUNTS = (1, 2, 8)

    def test_montecarlo_spec_bitwise_identical(self, session):
        spec_of = lambda w: MonteCarlo(
            n_samples=600, w_nm=600.0, seed_offset=5,
            execution=Execution(shard_size=128, workers=w),
        )
        results = {}
        for workers in self.WORKER_COUNTS:
            results[workers] = session.run(spec_of(workers)).payload
        reference = results[1]
        for workers in self.WORKER_COUNTS[1:]:
            for target in reference.samples:
                np.testing.assert_array_equal(
                    results[workers].samples[target],
                    reference.samples[target],
                    err_msg=f"{target} differs at {workers} workers",
                )

    def test_importance_spec_bitwise_identical(self, session, technology):
        model = technology["nmos"].statistical
        sigma_vt = model.sigmas(600.0, 40.0)["vt0"]
        threshold = float(np.asarray(model.nominal.vt0)) + 3.0 * sigma_vt
        spec_of = lambda w: ImportanceSampling(
            metric=_vt0_metric, threshold=threshold, shifts={"vt0": 3.0},
            n_samples=2000, w_nm=600.0, l_nm=40.0, fail_below=False,
            execution=Execution(shard_size=500, workers=w),
        )
        estimates = [
            session.run(spec_of(w)).payload for w in self.WORKER_COUNTS
        ]
        for estimate in estimates[1:]:
            assert estimate.probability == estimates[0].probability
            assert estimate.std_error == estimates[0].std_error
            assert estimate.effective_samples == estimates[0].effective_samples

    def test_factory_map_bitwise_identical(self, session):
        values = {}
        for workers in self.WORKER_COUNTS:
            values[workers], info = session.map_mc(
                _vt0_work, 512, seed_offset=9,
                execution=Execution(shard_size=128, workers=workers),
            )
            assert info.n_shards == 4
        np.testing.assert_array_equal(values[1], values[2])
        np.testing.assert_array_equal(values[1], values[8])

    def test_graph_arrival_bitwise_identical(self):
        graph = TimingGraph.parallel_chains(
            [[GaussianDelay(10e-12, 1e-12)] * 2 for _ in range(3)]
        )
        outs = [
            monte_carlo_arrival(
                graph, "src", "snk", 1500,
                execution=Execution(shard_size=500, workers=w),
                base_seed=77,
            )
            for w in self.WORKER_COUNTS
        ]
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])

    def test_default_shard_size_is_worker_independent(self, session):
        # Regression: with shard_size unset, the partition must come
        # from the automatic batch-economics sizing, never from the
        # worker count — Execution(workers=1) and Execution(workers=2)
        # share one stream.
        from repro.runtime.sharding import auto_shard_size

        results = {
            w: session.run(MonteCarlo(
                n_samples=2000, w_nm=600.0, seed_offset=3,
                execution=Execution(workers=w),
            ))
            for w in (1, 2)
        }
        assert results[1].runtime.shard_size == results[2].runtime.shard_size
        assert results[1].runtime.shard_size == auto_shard_size(2000) == 200
        assert results[1].runtime.n_shards == 10     # 2000 / auto 200
        np.testing.assert_array_equal(
            results[1].payload.samples["idsat"],
            results[2].payload.samples["idsat"],
        )

    def test_explicit_one_worker_session_matches_two(self, technology):
        # Regression: `--workers 1` (Session(executor=1)) must engage
        # the sharded runtime and draw the same stream as `--workers 2`
        # — the worker count may never pick between legacy and sharded.
        results = {}
        for workers in (1, 2):
            s = Session(technology=technology, seed=20260101,
                        executor=workers)
            try:
                results[workers] = s.run(MonteCarlo(n_samples=1500,
                                                    w_nm=600.0))
            finally:
                s.close()
        assert results[1].runtime is not None
        assert results[2].runtime is not None
        np.testing.assert_array_equal(
            results[1].payload.samples["idsat"],
            results[2].payload.samples["idsat"],
        )

    def test_legacy_path_untouched_by_runtime(self, session, technology):
        # execution=None on a serial session must remain the historical
        # single-stream draw (what the golden figures pin).
        from repro.stats.montecarlo import target_samples

        result = session.run(MonteCarlo(n_samples=400, w_nm=600.0, seed_offset=2))
        legacy = target_samples(
            technology["nmos"], "vs", 600.0, 40.0, technology.vdd, 400,
            session.rng(2),
        )
        np.testing.assert_array_equal(
            result.payload.samples["idsat"], legacy.samples["idsat"]
        )
        assert result.runtime is None


# ----------------------------------------------------------------------
# Executors.
# ----------------------------------------------------------------------
class TestExecutors:
    def test_resolve(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(1), SerialExecutor)
        parallel = resolve_executor(3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.workers == 3
        assert resolve_executor(parallel) is parallel
        parallel.close()

    def test_unpicklable_task_degrades_to_identical_serial(self, session,
                                                           technology):
        model = technology["nmos"].statistical
        sigma_vt = model.sigmas(600.0, 40.0)["vt0"]
        threshold = float(np.asarray(model.nominal.vt0)) + 3.0 * sigma_vt
        base = dict(
            threshold=threshold, shifts={"vt0": 3.0}, n_samples=1000,
            w_nm=600.0, l_nm=40.0, fail_below=False,
        )
        execution = Execution(shard_size=250, workers=2)
        picklable = session.run(ImportanceSampling(
            metric=_vt0_metric, execution=execution, **base))
        closure = session.run(ImportanceSampling(
            metric=lambda params: np.asarray(params.vt0),
            execution=execution, **base))
        assert closure.runtime.degraded is not None
        assert picklable.runtime.degraded is None
        assert closure.payload.probability == picklable.payload.probability


# ----------------------------------------------------------------------
# Adaptive stopping.
# ----------------------------------------------------------------------
class TestAdaptiveStopping:
    def test_sigma_rule_stops_early_and_worker_invariant(self, session):
        execution_of = lambda w: Execution(
            shard_size=200, workers=w, target_rel_err=0.05, wave_size=1,
        )
        results = [
            session.run(MonteCarlo(n_samples=20000, w_nm=600.0,
                                   execution=execution_of(w)))
            for w in (1, 2)
        ]
        for result in results:
            assert result.runtime.stopped_early
            # 1/sqrt(2(n-1)) <= 0.05 needs n >= 201 -> exactly 2 waves.
            assert result.runtime.shards_run == 2
            assert result.n_samples == 400
        np.testing.assert_array_equal(
            results[0].payload.samples["idsat"],
            results[1].payload.samples["idsat"],
        )

    def test_sample_cap(self, session):
        result = session.run(MonteCarlo(
            n_samples=5000, w_nm=600.0,
            execution=Execution(shard_size=100, max_samples=300, wave_size=1),
        ))
        assert result.runtime.stopped_early
        assert result.n_samples == 300
        assert "cap" in result.runtime.stop_reason

    def test_sample_accounting_counts_rows_not_elements(self, session):
        # Regression: a (n, 3) work output must count n samples toward
        # min/max_samples, not 3n — the cap here permits 600 samples and
        # must not fire after 200.
        values, info = session.map_mc(
            _multicolumn_work, 1000, seed_offset=9,
            execution=Execution(shard_size=100, wave_size=1,
                                max_samples=600),
        )
        assert values.shape == (600, 3)
        assert info.n_samples == 600

    def test_min_samples_floor(self, session):
        result = session.run(MonteCarlo(
            n_samples=3000, w_nm=600.0,
            execution=Execution(shard_size=100, target_rel_err=0.2,
                                min_samples=900, wave_size=1),
        ))
        # rel err 0.2 is met after ~14 samples; the floor forces 900.
        assert result.n_samples >= 900

    def test_probability_rule_keeps_sampling_with_zero_failures(
            self, session, technology):
        model = technology["nmos"].statistical
        # Unreachable threshold: no failures ever, relative error stays
        # inf, so only the cap stops the run.
        threshold = float(np.asarray(model.nominal.vt0)) - 1.0
        result = session.run(ImportanceSampling(
            metric=_vt0_metric, threshold=threshold, shifts={"vt0": 2.0},
            n_samples=2000, w_nm=600.0, l_nm=40.0, fail_below=True,
            execution=Execution(shard_size=100, target_rel_err=0.5,
                                max_samples=500, wave_size=1),
        ))
        assert result.payload.probability == 0.0
        assert result.payload.relative_error == np.inf
        assert result.n_samples == 500
        assert "cap" in result.runtime.stop_reason

    def test_stop_rule_validation(self):
        with pytest.raises(ValueError):
            StopRule(metric="nonsense")
        with pytest.raises(ValueError):
            StopRule(target_rel_err=-1.0)
        with pytest.raises(ValueError):
            Execution(workers=0)
        with pytest.raises(ValueError):
            Execution(shard_size=-5)

    def test_session_rejects_nonpositive_workers(self, technology):
        with pytest.raises(ValueError, match=">= 1"):
            Session(technology=technology, executor=0)


# ----------------------------------------------------------------------
# Checkpoint / resume.
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_resume_is_bit_identical_to_uninterrupted(self, session,
                                                      tmp_path):
        prefix = str(tmp_path / "mc.ckpt")
        shard = Execution(shard_size=100, wave_size=1)
        # Phase 1: run the first 300 samples, then "crash".
        partial = session.run(MonteCarlo(
            n_samples=1000, w_nm=600.0, seed_offset=4,
            execution=Execution(shard_size=100, wave_size=1,
                                max_samples=300, checkpoint=prefix),
        ))
        assert partial.runtime.stopped_early
        files = sorted(tmp_path.glob("mc.ckpt.*.ckpt"))
        assert len(files) == 1
        assert load_checkpoint(str(files[0])).shards_done == 3
        # Phase 2: resume to completion.
        resumed = session.run(MonteCarlo(
            n_samples=1000, w_nm=600.0, seed_offset=4,
            execution=Execution(shard_size=100, wave_size=1,
                                checkpoint=prefix),
        ))
        assert resumed.runtime.resumed_shards == 3
        uninterrupted = session.run(MonteCarlo(
            n_samples=1000, w_nm=600.0, seed_offset=4, execution=shard,
        ))
        np.testing.assert_array_equal(
            resumed.payload.samples["idsat"],
            uninterrupted.payload.samples["idsat"],
        )

    def test_distinct_workloads_share_a_prefix_without_collision(
            self, session, tmp_path):
        # Regression: multi-stage experiments hand every stage one
        # checkpoint prefix.  Different workloads (models, seeds) must
        # land in distinct files — no crash, no cross-resume — and a
        # completed run must short-circuit on rerun.
        prefix = str(tmp_path / "stages.ckpt")
        spec_of = lambda model, offset: MonteCarlo(
            n_samples=300, w_nm=600.0, seed_offset=offset, model=model,
            execution=Execution(shard_size=100, checkpoint=prefix),
        )
        vs_run = session.run(spec_of("vs", 4))
        bsim_run = session.run(spec_of("bsim", 4))
        other_seed = session.run(spec_of("vs", 5))
        assert len(list(tmp_path.glob("stages.ckpt.*.ckpt"))) == 3
        assert not np.array_equal(vs_run.payload.samples["idsat"],
                                  bsim_run.payload.samples["idsat"])
        # Rerun of a completed stage restores all shards from disk.
        rerun = session.run(spec_of("vs", 4))
        assert rerun.runtime.resumed_shards == 3
        np.testing.assert_array_equal(rerun.payload.samples["idsat"],
                                      vs_run.payload.samples["idsat"])
        assert other_seed.runtime.resumed_shards == 0

    def test_multistage_experiment_with_checkpoint_prefix(self, session,
                                                          tmp_path):
        # Regression: fig3 runs one sharded MC per width; with a shared
        # checkpoint prefix every width must checkpoint independently.
        from repro.experiments.fig3_idsat_mismatch import run as fig3_run

        result = fig3_run(
            widths_nm=(120.0, 300.0), n_samples=200, session=session,
            execution=Execution(shard_size=100,
                                checkpoint=str(tmp_path / "fig3.ckpt")),
        )
        assert result.total_mc.shape == (2,)
        assert len(list(tmp_path.glob("fig3.ckpt.*.ckpt"))) == 2

    def test_polarity_and_mode_get_distinct_checkpoints(self, session,
                                                        tmp_path):
        # The content-hash fingerprint must discriminate workload
        # parameters beyond geometry/model — here polarity at otherwise
        # identical specs (the nmos/pmos collision a name-only label
        # would miss).
        prefix = str(tmp_path / "pol.ckpt")
        spec_of = lambda polarity: MonteCarlo(
            n_samples=300, w_nm=600.0, seed_offset=4, polarity=polarity,
            execution=Execution(shard_size=100, checkpoint=prefix),
        )
        nmos = session.run(spec_of("nmos"))
        pmos = session.run(spec_of("pmos"))
        assert len(list(tmp_path.glob("pol.ckpt.*.ckpt"))) == 2
        assert not np.array_equal(nmos.payload.samples["idsat"],
                                  pmos.payload.samples["idsat"])

    def test_corrupted_checkpoint_task_is_rejected(self, session, tmp_path):
        # A checkpoint whose stored task disagrees with the filename
        # fingerprint (corruption, hand-editing) must refuse to resume
        # rather than silently feed foreign payloads.
        from dataclasses import replace

        from repro.runtime import save_checkpoint

        prefix = str(tmp_path / "mc.ckpt")
        execution = Execution(shard_size=100, wave_size=1, max_samples=100,
                              checkpoint=prefix)
        session.run(MonteCarlo(n_samples=400, w_nm=600.0, seed_offset=4,
                               execution=execution))
        (path,) = tmp_path.glob("mc.ckpt.*.ckpt")
        checkpoint = load_checkpoint(str(path))
        save_checkpoint(str(path), replace(checkpoint,
                                           task="some-other-workload"))
        with pytest.raises(ValueError, match="different run"):
            session.run(MonteCarlo(
                n_samples=400, w_nm=600.0, seed_offset=4,
                execution=Execution(shard_size=100, wave_size=1,
                                    checkpoint=prefix),
            ))

    def test_pre_pr7_memo_checkpoint_is_migrated_on_resume(self, tmp_path):
        # Regression: disabling the pickle memo in task_fingerprint
        # changed every digest, so checkpoints written by earlier
        # releases live under filenames the new fingerprint never
        # derives.  A resume must adopt (and retire) the legacy file
        # instead of silently starting over and orphaning it.
        import os

        from repro.runtime import save_checkpoint
        from repro.runtime.runner import (
            _checkpoint_file,
            _legacy_task_fingerprint,
            task_fingerprint,
        )

        shared = ("aliased", 1.0)
        task = _AliasedPayloadTask(shared, shared)
        # The aliasing makes the memo-enabled (legacy) digest differ
        # from the memo-free one — the exact upgrade hazard.
        assert _legacy_task_fingerprint(task) != task_fingerprint(task)

        prefix = str(tmp_path / "legacy.ckpt")
        plan = plan_shards(40, 10, base_seed=7)
        first = run_sharded(
            task, plan, SerialExecutor(), accumulator=_CountAccumulator(),
            accumulate=_count_accumulate, wave_size=1,
            stop=StopRule(max_samples=20), checkpoint_path=prefix,
        )
        assert first.info.shards_run == 2
        # Rewrite the on-disk state exactly as a pre-PR-7 release left
        # it: same checkpoint, filed under the legacy label/filename.
        (new_path,) = tmp_path.glob("legacy.ckpt.*.ckpt")
        legacy_label = _legacy_task_fingerprint(task)
        legacy_path = _checkpoint_file(prefix, plan, 1, legacy_label)
        checkpoint = load_checkpoint(str(new_path))
        from dataclasses import replace
        save_checkpoint(legacy_path, replace(checkpoint, task=legacy_label))
        os.unlink(new_path)

        resumed = run_sharded(
            task, plan, SerialExecutor(), accumulator=_CountAccumulator(),
            accumulate=_count_accumulate, wave_size=1,
            checkpoint_path=prefix,
        )
        assert resumed.info.resumed_shards == 2
        assert resumed.accumulator.n == 40
        # Migrated, not orphaned: the legacy file is gone and the
        # completed run's state lives under the new filename.
        assert not os.path.exists(legacy_path)
        assert list(tmp_path.glob("legacy.ckpt.*.ckpt"))

    def test_checkpointing_refuses_unpicklable_tasks(self, session,
                                                     technology, tmp_path):
        # A closure metric cannot be content-fingerprinted; silently
        # falling back to a type-name label would let same-type
        # workloads adopt each other's checkpoints, so refuse loudly.
        model = technology["nmos"].statistical
        threshold = float(np.asarray(model.nominal.vt0))
        with pytest.raises(ValueError, match="picklable"):
            session.run(ImportanceSampling(
                metric=lambda params: np.asarray(params.vt0),
                threshold=threshold, shifts={"vt0": 2.0}, n_samples=300,
                w_nm=600.0, l_nm=40.0,
                execution=Execution(shard_size=100,
                                    checkpoint=str(tmp_path / "is.ckpt")),
            ))

    def test_changed_wave_size_starts_fresh(self, session, tmp_path):
        # Adaptive-stopping boundaries depend on the wave size, so a
        # resume under a different wave_size must not adopt the old
        # state (it could stop where no uninterrupted run would).
        prefix = str(tmp_path / "mc.ckpt")
        session.run(MonteCarlo(
            n_samples=600, w_nm=600.0, seed_offset=4,
            execution=Execution(shard_size=100, wave_size=1,
                                max_samples=200, checkpoint=prefix),
        ))
        rerun = session.run(MonteCarlo(
            n_samples=600, w_nm=600.0, seed_offset=4,
            execution=Execution(shard_size=100, wave_size=2,
                                max_samples=200, checkpoint=prefix),
        ))
        assert rerun.runtime.resumed_shards == 0
        assert len(list(tmp_path.glob("mc.ckpt.*.ckpt"))) == 2


# ----------------------------------------------------------------------
# Runner plumbing and envelope metadata.
# ----------------------------------------------------------------------
class TestRunnerAndEnvelope:
    def test_stop_without_accumulator_raises(self):
        plan = plan_shards(100, 10, base_seed=0)
        with pytest.raises(ValueError, match="accumulate"):
            run_sharded(lambda s: s.n_samples, plan, SerialExecutor(),
                        stop=StopRule(max_samples=50))

    def test_runtime_metadata_serializes(self, session):
        result = session.run(MonteCarlo(
            n_samples=300, w_nm=600.0,
            execution=Execution(shard_size=100, workers=2),
        ))
        import json

        blob = json.loads(result.to_json(include_payload=False))
        assert blob["runtime"]["workers"] == 2
        assert blob["runtime"]["n_shards"] == 3
        assert blob["runtime"]["executor"] == "process-pool"
        assert blob["meta"]["streamed_sigmas"]["idsat"] > 0.0

    def test_streamed_sigma_matches_materialized(self, session):
        result = session.run(MonteCarlo(
            n_samples=600, w_nm=600.0, execution=Execution(shard_size=128),
        ))
        streamed = result.meta["streamed_sigmas"]["idsat"]
        assert streamed == pytest.approx(result.payload.sigma("idsat"),
                                         rel=1e-9)

    def test_session_default_execution_from_workers(self, technology):
        parallel = Session(technology=technology, executor=2, shard_size=128)
        try:
            serial_sharded = Session(technology=technology, shard_size=128)
            a = parallel.run(MonteCarlo(n_samples=300, w_nm=600.0))
            b = serial_sharded.run(MonteCarlo(n_samples=300, w_nm=600.0))
            assert a.runtime.workers == 2
            assert b.runtime.workers == 1
            np.testing.assert_array_equal(
                a.payload.samples["idsat"], b.payload.samples["idsat"]
            )
        finally:
            parallel.close()


# ----------------------------------------------------------------------
# TargetAccumulator (streamed MC statistics).
# ----------------------------------------------------------------------
class TestTargetAccumulator:
    def test_update_and_merge_track_per_target_stats(self, rng):
        samples_a = {"idsat": rng.standard_normal(200),
                     "cgg": rng.standard_normal(200)}
        samples_b = {"idsat": rng.standard_normal(300),
                     "cgg": rng.standard_normal(300)}
        left = TargetAccumulator().update(samples_a)
        right = TargetAccumulator().update(samples_b)
        left.merge(right)
        everything = np.concatenate([samples_a["idsat"], samples_b["idsat"]])
        assert left.n_samples == 500
        assert left.stats["idsat"].std() == pytest.approx(
            np.std(everything, ddof=1), rel=1e-9
        )
        assert np.isfinite(left.sigma_relative_error())
        roundtrip = TargetAccumulator.from_state(left.state())
        assert roundtrip.stats["idsat"].state() == left.stats["idsat"].state()
