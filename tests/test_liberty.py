"""Liberty writer: structure and value round-trip."""

import numpy as np
import pytest

from repro.charlib.characterize import CellTiming
from repro.charlib.liberty import write_liberty
from repro.charlib.tables import LookupTable2D


@pytest.fixture()
def timing() -> CellTiming:
    slews = np.array([5e-12, 20e-12])
    loads = np.array([1e-15, 4e-15])
    delay = LookupTable2D(slews, loads, [[5e-12, 8e-12], [7e-12, 11e-12]])
    tran = LookupTable2D(slews, loads, [[4e-12, 9e-12], [6e-12, 12e-12]])
    return CellTiming(
        name="INV_X2",
        vdd=0.9,
        delay={"tphl": delay, "tplh": delay},
        transition={"tphl": tran, "tplh": tran},
    )


class TestLibertyWriter:
    def test_library_structure(self, timing):
        text = write_liberty([timing], library_name="testlib")
        assert text.startswith("library (testlib) {")
        assert "cell (INV_X2) {" in text
        assert text.rstrip().endswith("}")
        assert text.count("{") == text.count("}")

    def test_all_groups_present(self, timing):
        text = write_liberty([timing])
        for group in ("cell_fall", "cell_rise", "fall_transition",
                      "rise_transition"):
            assert f"{group} (delay_template)" in text

    def test_unit_conversion(self, timing):
        text = write_liberty([timing])
        # 5 ps = 0.005 ns; 1 fF = 0.001 pF.
        assert "0.005" in text
        assert "0.001" in text

    def test_negative_unate_inverter(self, timing):
        text = write_liberty([timing])
        assert "timing_sense : negative_unate;" in text
        assert 'function : "(!A)";' in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            write_liberty([])
