"""Liberty writer: structure, multi-cell emission, value round-trip."""

import numpy as np
import pytest

from repro.charlib.arcs import Arc, LibertyCell
from repro.charlib.characterize import CellTiming
from repro.charlib.liberty import parse_liberty, write_liberty
from repro.charlib.tables import LookupTable2D


def _table(values):
    return LookupTable2D(
        np.array([5e-12, 20e-12]), np.array([1e-15, 4e-15]), values
    )


@pytest.fixture()
def timing() -> CellTiming:
    delay = _table([[5e-12, 8e-12], [7e-12, 11e-12]])
    tran = _table([[4e-12, 9e-12], [6e-12, 12e-12]])
    return CellTiming(
        name="INV_X2",
        vdd=0.9,
        delay={"tphl": delay, "tplh": delay},
        transition={"tphl": tran, "tplh": tran},
    )


@pytest.fixture()
def nand_timing() -> CellTiming:
    delay = _table([[6e-12, 9e-12], [8e-12, 12e-12]])
    tran = _table([[5e-12, 10e-12], [7e-12, 13e-12]])
    arcs = (Arc("tphl", "cell_fall", "fall_transition"),
            Arc("tplh", "cell_rise", "rise_transition"))
    return CellTiming(
        name="NAND2_X1",
        vdd=0.9,
        delay={"tphl": delay, "tplh": delay},
        transition={"tphl": tran, "tplh": tran},
        arcs=arcs,
        liberty=LibertyCell(
            input_pins=("A", "B"), output_pin="Y", function="(!(A&B))",
            related_pin="A", timing_sense="negative_unate",
        ),
    )


@pytest.fixture()
def dff_timing() -> CellTiming:
    delay = _table([[9e-12, 13e-12], [11e-12, 16e-12]])
    tran = _table([[6e-12, 11e-12], [8e-12, 14e-12]])
    arcs = (Arc("tpcq_lh", "cell_rise", "rise_transition"),
            Arc("tpcq_hl", "cell_fall", "fall_transition"))
    return CellTiming(
        name="DFF_X1",
        vdd=0.9,
        delay={"tpcq_lh": delay, "tpcq_hl": delay},
        transition={"tpcq_lh": tran, "tpcq_hl": tran},
        arcs=arcs,
        liberty=LibertyCell(
            input_pins=("D", "CK"), output_pin="Q", function=None,
            related_pin="CK", timing_sense=None, timing_type="falling_edge",
            ff=("D", "(!CK)"),
        ),
    )


class TestLibertyWriter:
    def test_library_structure(self, timing):
        text = write_liberty([timing], library_name="testlib")
        assert text.startswith("library (testlib) {")
        assert "cell (INV_X2) {" in text
        assert text.rstrip().endswith("}")
        assert text.count("{") == text.count("}")

    def test_all_groups_present(self, timing):
        text = write_liberty([timing])
        for group in ("cell_fall", "cell_rise", "fall_transition",
                      "rise_transition"):
            assert f"{group} (delay_template)" in text

    def test_unit_conversion(self, timing):
        text = write_liberty([timing])
        # 5 ps = 0.005 ns; 1 fF = 0.001 pF.
        assert "0.005" in text
        assert "0.001" in text

    def test_negative_unate_inverter(self, timing):
        text = write_liberty([timing])
        assert "timing_sense : negative_unate;" in text
        assert 'function : "(!A)";' in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            write_liberty([])


class TestMultiCellLibrary:
    def test_golden_snippet(self, timing, nand_timing, dff_timing):
        text = write_liberty([timing, nand_timing, dff_timing],
                             library_name="multilib")
        # Header.
        assert text.startswith("library (multilib) {")
        assert '  delay_model : "table_lookup";' in text
        assert '  time_unit : "1ns";' in text
        assert "  capacitive_load_unit (1, pf);" in text
        assert "  nom_voltage : 0.9;" in text
        # All three cells, braces balanced.
        for cell in ("INV_X2", "NAND2_X1", "DFF_X1"):
            assert f"  cell ({cell}) {{" in text
        assert text.count("{") == text.count("}")
        # NAND2 pins + function from the adapter metadata.
        assert "pin (A) { direction : input; }" in text
        assert "pin (B) { direction : input; }" in text
        assert 'function : "(!(A&B))";' in text
        # DFF: sequential metadata, no timing_sense, falling-edge CK arc.
        assert "ff (IQ, IQN) {" in text
        assert 'next_state : "D";' in text
        assert 'clocked_on : "(!CK)";' in text
        assert 'related_pin : "CK";' in text
        assert "timing_type : falling_edge;" in text
        # Every cell carries both delay groups.
        assert text.count("cell_rise (delay_template)") == 3
        assert text.count("cell_fall (delay_template)") == 3

    def test_parse_back_round_trip(self, timing, nand_timing, dff_timing):
        cells = [timing, nand_timing, dff_timing]
        parsed = parse_liberty(write_liberty(cells))
        assert set(parsed) == {"INV_X2", "NAND2_X1", "DFF_X1"}
        groups = {
            "INV_X2": {"tphl": "cell_fall", "tplh": "cell_rise"},
            "NAND2_X1": {"tphl": "cell_fall", "tplh": "cell_rise"},
            "DFF_X1": {"tpcq_hl": "cell_fall", "tpcq_lh": "cell_rise"},
        }
        for cell in cells:
            for arc, group in groups[cell.name].items():
                table = parsed[cell.name][group]
                np.testing.assert_allclose(
                    table.values, cell.delay[arc].values, rtol=1e-5
                )
                np.testing.assert_allclose(table.slews, cell.delay[arc].slews,
                                           rtol=1e-5)
                np.testing.assert_allclose(table.loads, cell.delay[arc].loads,
                                           rtol=1e-5)
            transition_groups = {
                "cell_fall": "fall_transition", "cell_rise": "rise_transition"
            }
            for arc, group in groups[cell.name].items():
                table = parsed[cell.name][transition_groups[group]]
                np.testing.assert_allclose(
                    table.values, cell.transition[arc].values, rtol=1e-5
                )
