"""Virtual Source model: physics invariants of Eq. 2-4."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import PHI_T_NOMINAL
from repro.data.cards import vs_nmos_40nm, vs_pmos_40nm
from repro.devices.base import Polarity
from repro.devices.vs.model import VSDevice
from repro.devices.vs.params import VSParams

VDD = 0.9


@pytest.fixture()
def nmos() -> VSDevice:
    return VSDevice(vs_nmos_40nm(300.0, 40.0))


@pytest.fixture()
def pmos() -> VSDevice:
    return VSDevice(vs_pmos_40nm(300.0, 40.0))


class TestThresholdAndDIBL:
    def test_dibl_lowers_threshold(self, nmos):
        vt_low = nmos.threshold_voltage(0.0)
        vt_high = nmos.threshold_voltage(VDD)
        assert vt_high < vt_low

    def test_dibl_shift_matches_coefficient(self, nmos):
        delta = nmos.params.dibl()
        shift = nmos.threshold_voltage(0.0) - nmos.threshold_voltage(VDD)
        assert shift == pytest.approx(float(delta) * VDD)

    def test_dibl_grows_for_short_channels(self):
        card = vs_nmos_40nm()
        assert float(card.dibl(30.0)) > float(card.dibl(40.0)) > float(card.dibl(60.0))

    def test_dibl_at_reference_length(self):
        card = vs_nmos_40nm()
        assert float(card.dibl(float(np.asarray(card.l_ref_nm)))) == pytest.approx(
            float(np.asarray(card.delta0))
        )


class TestInversionCharge:
    def test_strong_inversion_linear_in_overdrive(self, nmos):
        # Deep strong inversion: Qixo ~ Cinv * (Vgs - VT).
        q1 = float(nmos.inversion_charge_density(0.9, 0.0))
        vt = float(nmos.threshold_voltage(0.0))
        cinv = float(np.asarray(nmos.params.cinv_si))
        # alpha-smoothing shifts the effective threshold; allow 15 %.
        assert q1 == pytest.approx(cinv * (0.9 - vt), rel=0.15)

    def test_subthreshold_exponential_slope(self, nmos):
        # One phit*n*ln(10) of gate drive = one decade of charge.  Probe
        # deep in weak inversion where the Fermi smoothing is saturated.
        n0 = float(np.asarray(nmos.params.n0))
        vg = -0.1
        q1 = float(nmos.inversion_charge_density(vg, 0.05))
        q2 = float(
            nmos.inversion_charge_density(vg + n0 * PHI_T_NOMINAL * np.log(10.0), 0.05)
        )
        assert q2 / q1 == pytest.approx(10.0, rel=0.1)

    def test_charge_positive_everywhere(self, nmos):
        vg = np.linspace(-0.3, 1.2, 40)
        q = nmos.inversion_charge_density(vg, 0.45)
        assert np.all(q > 0.0)

    def test_charge_monotone_in_vgs(self, nmos):
        vg = np.linspace(-0.2, 1.0, 60)
        q = nmos.inversion_charge_density(vg, VDD)
        assert np.all(np.diff(q) > 0.0)


class TestSaturationFunction:
    def test_fs_limits(self, nmos):
        fs_small = float(nmos.saturation_function(VDD, 1e-4))
        fs_large = float(nmos.saturation_function(VDD, 5.0))
        assert fs_small < 0.01
        assert fs_large > 0.95

    def test_fs_monotone_in_vds(self, nmos):
        vds = np.linspace(1e-3, 1.5, 100)
        fs = nmos.saturation_function(VDD, vds)
        assert np.all(np.diff(fs) > 0.0)

    def test_fs_bounded(self, nmos):
        vds = np.linspace(0.0, 3.0, 50)
        fs = nmos.saturation_function(VDD, vds)
        assert np.all((fs >= 0.0) & (fs < 1.0))

    def test_vdsat_blends_to_thermal_in_subthreshold(self, nmos):
        vdsat_sub = float(nmos.saturation_voltage(0.0, 0.05))
        assert vdsat_sub == pytest.approx(PHI_T_NOMINAL, rel=0.2)

    def test_vdsat_strong_inversion_velocity_saturation(self, nmos):
        p = nmos.params
        expected = float(np.asarray(p.vxo_si * p.l_si / p.mu_si))
        vdsat = float(nmos.saturation_voltage(1.2, VDD))
        assert vdsat == pytest.approx(expected, rel=0.1)


class TestCurrent:
    def test_current_zero_at_vds_zero(self, nmos):
        assert float(nmos.ids(VDD, 0.0, 0.0)) == pytest.approx(0.0, abs=1e-12)

    def test_current_scales_with_width(self):
        d1 = VSDevice(vs_nmos_40nm(300.0, 40.0))
        d2 = VSDevice(vs_nmos_40nm(600.0, 40.0))
        i1 = float(d1.ids(VDD, VDD, 0.0))
        i2 = float(d2.ids(VDD, VDD, 0.0))
        assert i2 == pytest.approx(2.0 * i1, rel=1e-9)

    def test_on_current_magnitude_40nm_class(self, nmos):
        # 40-nm NMOS drives a few hundred uA/um at 0.9 V.
        ion_ua_um = float(nmos.ids(VDD, VDD, 0.0)) * 1e6 / 0.3
        assert 300.0 < ion_ua_um < 2000.0

    def test_ion_ioff_ratio(self, nmos):
        ion = float(nmos.idsat(VDD))
        ioff = float(nmos.ioff(VDD))
        assert ion / ioff > 1e3

    def test_source_drain_symmetry(self, nmos):
        # Exchanging the drain and source node voltages negates the current.
        i_fwd = float(nmos.ids(0.7, 0.5, 0.1))
        i_rev = float(nmos.ids(0.7, 0.1, 0.5))
        assert i_fwd > 0.0
        assert i_rev == pytest.approx(-i_fwd, rel=1e-9)

    def test_current_continuous_at_vds_zero(self, nmos):
        eps = 1e-7
        i_plus = float(nmos.ids(VDD, eps, 0.0))
        i_minus = float(nmos.ids(VDD, -eps, 0.0))
        assert i_plus == pytest.approx(-i_minus, rel=1e-3)
        assert abs(i_plus) < 1e-6

    def test_gm_positive_in_saturation(self, nmos):
        _, gm, gds, _ = nmos.ids_and_derivatives(0.7, VDD, 0.0)
        assert float(gm) > 0.0
        assert float(gds) > 0.0

    def test_pmos_mirror(self, pmos):
        # PMOS with |Vgs|=|Vds|=Vdd conducts with negative drain current.
        i = float(pmos.ids(0.0, 0.0, VDD))
        assert i < 0.0

    def test_pmos_off(self, pmos):
        i = float(pmos.ids(VDD, 0.0, VDD))
        assert abs(i) < 1e-6


class TestCharges:
    def test_charge_conservation(self, nmos):
        qg, qd, qs = nmos.charges(0.8, 0.4, 0.0)
        assert float(qg + qd + qs) == pytest.approx(0.0, abs=1e-22)

    def test_gate_charge_increases_with_vg(self, nmos):
        qg1 = float(nmos.charges(0.3, VDD, 0.0)[0])
        qg2 = float(nmos.charges(0.9, VDD, 0.0)[0])
        assert qg2 > qg1

    def test_cgg_positive(self, nmos):
        assert float(nmos.cgg(VDD, 0.0, 0.0)) > 0.0

    def test_cgg_approaches_full_gate_cap_in_inversion(self, nmos):
        p = nmos.params
        c_ox = float(np.asarray(p.cinv_si * p.w_si * p.l_si))
        c_ov = float(np.asarray((p.cgdo_f_m + p.cgso_f_m) * p.w_si))
        cgg = float(nmos.cgg(1.2, 0.0, 0.0))
        assert cgg == pytest.approx(c_ox + c_ov, rel=0.1)

    def test_symmetric_partition_at_vds_zero(self, nmos):
        _, qd, qs = nmos.charges(VDD, 0.0, 0.0)
        assert float(qd) == pytest.approx(float(qs), rel=1e-6)

    def test_saturation_partition_favors_source(self, nmos):
        # Pinched-off drain end holds less channel charge.
        _, qd, qs = nmos.charges(VDD, VDD, 0.0)
        p = nmos.params
        # Remove overlap contributions to compare channel-only partition.
        q_ov_d = -float(np.asarray(p.cgdo_f_m * p.w_si)) * (VDD - VDD)
        q_ov_s = -float(np.asarray(p.cgso_f_m * p.w_si)) * VDD
        qd_ch = float(qd) - q_ov_d
        qs_ch = float(qs) - q_ov_s
        assert abs(qd_ch) < abs(qs_ch)


class TestValidation:
    def test_rejects_negative_geometry(self):
        with pytest.raises(ValueError):
            VSDevice(vs_nmos_40nm().replace(w_nm=-1.0))

    def test_rejects_subunity_swing_factor(self):
        with pytest.raises(ValueError):
            VSDevice(vs_nmos_40nm().replace(n0=0.8))

    def test_batch_shape_detection(self):
        card = vs_nmos_40nm().replace(vt0=np.zeros(17) + 0.42)
        assert card.batch_shape == (17,)

    def test_batched_evaluation_matches_scalar(self):
        vt0 = np.array([0.40, 0.42, 0.44])
        batched = VSDevice(vs_nmos_40nm().replace(vt0=vt0))
        i_batched = batched.ids(VDD, VDD, 0.0)
        for k, v in enumerate(vt0):
            scalar = VSDevice(vs_nmos_40nm().replace(vt0=float(v)))
            assert i_batched[k] == pytest.approx(float(scalar.ids(VDD, VDD, 0.0)))


class TestTemperature:
    def test_reference_temperature_is_identity(self):
        cold = VSDevice(vs_nmos_40nm(), temperature=300.15)
        base = VSDevice(vs_nmos_40nm())
        assert float(cold.idsat(VDD)) == pytest.approx(float(base.idsat(VDD)))

    def test_hot_device_drives_less_at_high_overdrive(self):
        # At large gate drive the mobility/velocity degradation dominates
        # the threshold drop; near Vdd = 0.9 V the device sits in the
        # temperature-inversion regime instead (checked below).
        hot = VSDevice(vs_nmos_40nm(), temperature=398.15)
        base = VSDevice(vs_nmos_40nm())
        assert float(hot.idsat(1.4)) < float(base.idsat(1.4))

    def test_temperature_inversion_at_low_vdd(self):
        # Low overdrive: the VT reduction wins and the hot device is
        # *stronger* — the classic low-Vdd temperature inversion.
        hot = VSDevice(vs_nmos_40nm(), temperature=398.15)
        base = VSDevice(vs_nmos_40nm())
        assert float(hot.idsat(0.6)) > float(base.idsat(0.6))

    def test_hot_device_leaks_more(self):
        hot = VSDevice(vs_nmos_40nm(), temperature=398.15)
        base = VSDevice(vs_nmos_40nm())
        # Lower VT and more thermal spread: decades more subthreshold leak.
        assert float(hot.ioff(VDD)) > 3.0 * float(base.ioff(VDD))

    def test_temperature_validation(self):
        with pytest.raises(ValueError):
            VSDevice(vs_nmos_40nm(), temperature=-10.0)


class TestPropertyBased:
    @given(
        vg=st.floats(-0.2, 1.1),
        vd=st.floats(0.0, 1.1),
        vs=st.floats(0.0, 0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_current_finite_everywhere(self, vg, vd, vs):
        device = VSDevice(vs_nmos_40nm())
        assert np.isfinite(float(device.ids(vg, vd, vs)))

    @given(vgs=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_current_nonnegative_for_positive_vds(self, vgs):
        device = VSDevice(vs_nmos_40nm())
        assert float(device.ids(vgs, 0.9, 0.0)) >= 0.0

    @given(
        vg=st.floats(0.0, 1.0),
        vd=st.floats(0.0, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_charge_conservation_everywhere(self, vg, vd):
        device = VSDevice(vs_nmos_40nm())
        qg, qd, qs = device.charges(vg, vd, 0.0)
        total = float(qg) + float(qd) + float(qs)
        assert abs(total) < 1e-20
