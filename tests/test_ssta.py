"""SSTA: delay models, timing graph, and both engines."""

import numpy as np
import pytest

from repro.ssta import (
    EmpiricalDelay,
    FixedDelay,
    GaussianDelay,
    TimingGraph,
    clark_arrival,
    monte_carlo_arrival,
)


class TestDelayModels:
    def test_fixed(self, rng):
        d = FixedDelay(5.0)
        assert d.mean == 5.0
        assert d.variance == 0.0
        np.testing.assert_array_equal(d.draw(4, rng), np.full(4, 5.0))

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedDelay(-1.0)

    def test_gaussian_moments(self, rng):
        d = GaussianDelay(10.0, 2.0)
        draws = d.draw(50000, rng)
        assert np.mean(draws) == pytest.approx(10.0, abs=0.05)
        assert np.std(draws, ddof=1) == pytest.approx(2.0, rel=0.02)

    def test_empirical_preserves_shape(self, rng):
        skewed = np.exp(rng.standard_normal(5000))
        d = EmpiricalDelay(skewed)
        draws = d.draw(20000, rng)
        from scipy import stats as sps

        assert sps.skew(draws) == pytest.approx(sps.skew(skewed), rel=0.3)

    def test_empirical_gaussian_twin(self, rng):
        samples = 3.0 + 0.5 * rng.standard_normal(2000)
        twin = EmpiricalDelay(samples).gaussian_twin()
        assert twin.mu == pytest.approx(3.0, abs=0.05)
        assert twin.sigma == pytest.approx(0.5, rel=0.1)

    def test_empirical_needs_samples(self):
        with pytest.raises(ValueError):
            EmpiricalDelay([1.0, 2.0])


class TestTimingGraph:
    def test_cycle_rejected(self):
        g = TimingGraph()
        g.add_arc("a", "b", FixedDelay(1.0))
        g.add_arc("b", "c", FixedDelay(1.0))
        with pytest.raises(ValueError):
            g.add_arc("c", "a", FixedDelay(1.0))

    def test_delay_type_checked(self):
        g = TimingGraph()
        with pytest.raises(TypeError):
            g.add_arc("a", "b", 1.0)

    def test_chain_builder(self):
        g = TimingGraph.chain([FixedDelay(1.0), FixedDelay(2.0)])
        assert set(g.nodes) == {"n0", "n1", "n2"}

    def test_critical_path(self):
        g = TimingGraph.parallel_chains(
            [
                [FixedDelay(1.0), FixedDelay(1.0)],       # total 2
                [FixedDelay(5.0)],                        # total 5
            ]
        )
        path = g.critical_path("src", "snk")
        assert path == ["src", "c1_0", "snk"]  # the single 5 ns arc wins

    def test_endpoint_validation(self):
        g = TimingGraph.chain([FixedDelay(1.0)])
        with pytest.raises(KeyError):
            g.validate_endpoints("n0", "zz")


class TestEngines:
    def test_chain_sums_deterministic(self, rng):
        g = TimingGraph.chain([FixedDelay(1.0), FixedDelay(2.5)])
        samples = monte_carlo_arrival(g, "n0", "n2", 100, rng)
        np.testing.assert_allclose(samples, 3.5)
        analytic = clark_arrival(g, "n0", "n2")
        assert analytic.mean == pytest.approx(3.5)
        assert analytic.sigma == pytest.approx(0.0)

    def test_chain_variance_adds(self, rng):
        g = TimingGraph.chain(
            [GaussianDelay(1.0, 0.1), GaussianDelay(2.0, 0.2)]
        )
        analytic = clark_arrival(g, "n0", "n2")
        assert analytic.mean == pytest.approx(3.0)
        assert analytic.variance == pytest.approx(0.05)
        mc = monte_carlo_arrival(g, "n0", "n2", 60000, rng)
        assert np.std(mc, ddof=1) == pytest.approx(analytic.sigma, rel=0.02)

    def test_max_of_identical_gaussians(self, rng):
        # Known result: E[max(X1, X2)] = mu + sigma/sqrt(pi) for iid.
        g = TimingGraph.parallel_chains(
            [[GaussianDelay(5.0, 1.0)], [GaussianDelay(5.0, 1.0)]]
        )
        analytic = clark_arrival(g, "src", "snk")
        assert analytic.mean == pytest.approx(5.0 + 1.0 / np.sqrt(np.pi),
                                              rel=1e-6)
        mc = monte_carlo_arrival(g, "src", "snk", 80000, rng)
        assert np.mean(mc) == pytest.approx(analytic.mean, rel=0.01)

    def test_clark_matches_mc_for_gaussian_arcs(self, rng):
        chains = [
            [GaussianDelay(2.0, 0.3), GaussianDelay(3.0, 0.4)],
            [GaussianDelay(4.5, 0.5)],
            [GaussianDelay(1.0, 0.2), GaussianDelay(2.0, 0.2),
             GaussianDelay(2.0, 0.2)],
        ]
        g = TimingGraph.parallel_chains(chains)
        analytic = clark_arrival(g, "src", "snk")
        mc = monte_carlo_arrival(g, "src", "snk", 60000, rng)
        assert np.mean(mc) == pytest.approx(analytic.mean, rel=0.02)
        assert np.std(mc, ddof=1) == pytest.approx(analytic.sigma, rel=0.1)

    def test_clark_underestimates_skewed_tail(self, rng):
        # Log-normal arcs: Gaussian SSTA misses the high quantile — the
        # low-Vdd failure mode of Fig. 7's discussion.
        raw = np.exp(0.6 * rng.standard_normal(4000))
        chains = [[EmpiricalDelay(raw)] for _ in range(3)]
        g = TimingGraph.parallel_chains(chains)
        mc = monte_carlo_arrival(g, "src", "snk", 40000, rng)
        analytic = clark_arrival(g, "src", "snk")
        q99_mc = float(np.quantile(mc, 0.99))
        q99_clark = analytic.quantile(0.99)
        assert q99_clark < q99_mc  # tail underestimated

    def test_invalid_sample_count(self, rng):
        g = TimingGraph.chain([FixedDelay(1.0)])
        with pytest.raises(ValueError):
            monte_carlo_arrival(g, "n0", "n1", 0, rng)
