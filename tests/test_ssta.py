"""SSTA: delay models, timing graph, and both engines."""

import numpy as np
import pytest

from repro.ssta import (
    EmpiricalDelay,
    FixedDelay,
    GaussianDelay,
    TableDelay,
    TimingGraph,
    clark_arrival,
    monte_carlo_arrival,
)


class TestDelayModels:
    def test_fixed(self, rng):
        d = FixedDelay(5.0)
        assert d.mean == 5.0
        assert d.variance == 0.0
        np.testing.assert_array_equal(d.draw(4, rng), np.full(4, 5.0))

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedDelay(-1.0)

    def test_gaussian_moments(self, rng):
        d = GaussianDelay(10.0, 2.0)
        draws = d.draw(50000, rng)
        assert np.mean(draws) == pytest.approx(10.0, abs=0.05)
        assert np.std(draws, ddof=1) == pytest.approx(2.0, rel=0.02)

    def test_empirical_preserves_shape(self, rng):
        skewed = np.exp(rng.standard_normal(5000))
        d = EmpiricalDelay(skewed)
        draws = d.draw(20000, rng)
        from scipy import stats as sps

        assert sps.skew(draws) == pytest.approx(sps.skew(skewed), rel=0.3)

    def test_empirical_gaussian_twin(self, rng):
        samples = 3.0 + 0.5 * rng.standard_normal(2000)
        twin = EmpiricalDelay(samples).gaussian_twin()
        assert twin.mu == pytest.approx(3.0, abs=0.05)
        assert twin.sigma == pytest.approx(0.5, rel=0.1)

    def test_empirical_needs_samples(self):
        with pytest.raises(ValueError):
            EmpiricalDelay([1.0, 2.0])


class TestTableDelay:
    @staticmethod
    def _tables():
        from repro.charlib import LookupTable2D

        slews = np.array([1e-12, 3e-12])
        loads = np.array([1e-15, 3e-15])
        mean = LookupTable2D(slews, loads, [[4e-12, 6e-12], [8e-12, 10e-12]])
        sigma = LookupTable2D(slews, loads, [[1e-13, 2e-13], [3e-13, 4e-13]])
        return mean, sigma

    def test_interpolates_operating_point(self, rng):
        mean, sigma = self._tables()
        d = TableDelay(mean, sigma, slew=2e-12, load=2e-15)
        assert d.mean == pytest.approx(7e-12)
        assert d.variance == pytest.approx(2.5e-13**2)
        draws = d.draw(40000, rng)
        assert np.mean(draws) == pytest.approx(7e-12, rel=0.01)
        assert np.std(draws, ddof=1) == pytest.approx(2.5e-13, rel=0.02)

    def test_missing_sigma_is_deterministic(self, rng):
        mean, _ = self._tables()
        d = TableDelay(mean, None, slew=1e-12, load=1e-15)
        assert d.variance == 0.0
        np.testing.assert_allclose(d.draw(8, rng), np.full(8, 4e-12))

    def test_from_timing(self, rng):
        from repro.charlib import CellTiming

        mean, sigma = self._tables()
        timing = CellTiming(
            name="INV", vdd=0.9,
            delay={"tphl": mean}, transition={"tphl": mean},
            delay_sigma={"tphl": sigma}, transition_sigma={"tphl": sigma},
            n_mc=100,
        )
        d = TableDelay.from_timing(timing, "tphl", slew=1e-12, load=1e-15)
        assert d.mean == pytest.approx(4e-12)
        assert d.sigma == pytest.approx(1e-13)
        with pytest.raises(KeyError, match="no arc 'tplh'"):
            TableDelay.from_timing(timing, "tplh", slew=1e-12, load=1e-15)

    def test_nominal_timing_gives_zero_sigma(self):
        from repro.charlib import CellTiming

        mean, _ = self._tables()
        timing = CellTiming(name="INV", vdd=0.9,
                            delay={"tphl": mean}, transition={"tphl": mean})
        d = TableDelay.from_timing(timing, "tphl", slew=2e-12, load=2e-15)
        assert d.sigma == 0.0

    def test_invalid_operating_point(self):
        mean, sigma = self._tables()
        with pytest.raises(ValueError):
            TableDelay(mean, sigma, slew=0.0, load=1e-15)

    def test_drives_both_engines(self, rng):
        mean, sigma = self._tables()
        arc = TableDelay(mean, sigma, slew=2e-12, load=2e-15)
        g = TimingGraph.chain([arc, arc])
        analytic = clark_arrival(g, "n0", "n2")
        assert analytic.mean == pytest.approx(2 * arc.mean)
        assert analytic.variance == pytest.approx(2 * arc.variance)
        mc = monte_carlo_arrival(g, "n0", "n2", 30000, rng)
        assert np.mean(mc) == pytest.approx(analytic.mean, rel=0.01)


class TestTimingGraph:
    def test_cycle_rejected(self):
        g = TimingGraph()
        g.add_arc("a", "b", FixedDelay(1.0))
        g.add_arc("b", "c", FixedDelay(1.0))
        with pytest.raises(ValueError):
            g.add_arc("c", "a", FixedDelay(1.0))

    def test_delay_type_checked(self):
        g = TimingGraph()
        with pytest.raises(TypeError):
            g.add_arc("a", "b", 1.0)

    def test_chain_builder(self):
        g = TimingGraph.chain([FixedDelay(1.0), FixedDelay(2.0)])
        assert set(g.nodes) == {"n0", "n1", "n2"}

    def test_critical_path(self):
        g = TimingGraph.parallel_chains(
            [
                [FixedDelay(1.0), FixedDelay(1.0)],       # total 2
                [FixedDelay(5.0)],                        # total 5
            ]
        )
        path = g.critical_path("src", "snk")
        assert path == ["src", "c1_0", "snk"]  # the single 5 ns arc wins

    def test_endpoint_validation(self):
        g = TimingGraph.chain([FixedDelay(1.0)])
        with pytest.raises(KeyError):
            g.validate_endpoints("n0", "zz")


class TestEngines:
    def test_chain_sums_deterministic(self, rng):
        g = TimingGraph.chain([FixedDelay(1.0), FixedDelay(2.5)])
        samples = monte_carlo_arrival(g, "n0", "n2", 100, rng)
        np.testing.assert_allclose(samples, 3.5)
        analytic = clark_arrival(g, "n0", "n2")
        assert analytic.mean == pytest.approx(3.5)
        assert analytic.sigma == pytest.approx(0.0)

    def test_chain_variance_adds(self, rng):
        g = TimingGraph.chain(
            [GaussianDelay(1.0, 0.1), GaussianDelay(2.0, 0.2)]
        )
        analytic = clark_arrival(g, "n0", "n2")
        assert analytic.mean == pytest.approx(3.0)
        assert analytic.variance == pytest.approx(0.05)
        mc = monte_carlo_arrival(g, "n0", "n2", 60000, rng)
        assert np.std(mc, ddof=1) == pytest.approx(analytic.sigma, rel=0.02)

    def test_max_of_identical_gaussians(self, rng):
        # Known result: E[max(X1, X2)] = mu + sigma/sqrt(pi) for iid.
        g = TimingGraph.parallel_chains(
            [[GaussianDelay(5.0, 1.0)], [GaussianDelay(5.0, 1.0)]]
        )
        analytic = clark_arrival(g, "src", "snk")
        assert analytic.mean == pytest.approx(5.0 + 1.0 / np.sqrt(np.pi),
                                              rel=1e-6)
        mc = monte_carlo_arrival(g, "src", "snk", 80000, rng)
        assert np.mean(mc) == pytest.approx(analytic.mean, rel=0.01)

    def test_clark_matches_mc_for_gaussian_arcs(self, rng):
        chains = [
            [GaussianDelay(2.0, 0.3), GaussianDelay(3.0, 0.4)],
            [GaussianDelay(4.5, 0.5)],
            [GaussianDelay(1.0, 0.2), GaussianDelay(2.0, 0.2),
             GaussianDelay(2.0, 0.2)],
        ]
        g = TimingGraph.parallel_chains(chains)
        analytic = clark_arrival(g, "src", "snk")
        mc = monte_carlo_arrival(g, "src", "snk", 60000, rng)
        assert np.mean(mc) == pytest.approx(analytic.mean, rel=0.02)
        assert np.std(mc, ddof=1) == pytest.approx(analytic.sigma, rel=0.1)

    def test_clark_underestimates_skewed_tail(self, rng):
        # Log-normal arcs: Gaussian SSTA misses the high quantile — the
        # low-Vdd failure mode of Fig. 7's discussion.
        raw = np.exp(0.6 * rng.standard_normal(4000))
        chains = [[EmpiricalDelay(raw)] for _ in range(3)]
        g = TimingGraph.parallel_chains(chains)
        mc = monte_carlo_arrival(g, "src", "snk", 40000, rng)
        analytic = clark_arrival(g, "src", "snk")
        q99_mc = float(np.quantile(mc, 0.99))
        q99_clark = analytic.quantile(0.99)
        assert q99_clark < q99_mc  # tail underestimated

    def test_invalid_sample_count(self, rng):
        g = TimingGraph.chain([FixedDelay(1.0)])
        with pytest.raises(ValueError):
            monte_carlo_arrival(g, "n0", "n1", 0, rng)
