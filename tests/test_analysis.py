"""Delay, leakage, bisection and SNM analysis utilities."""

import numpy as np
import pytest

from repro.analysis.delay import crossing_time
from repro.analysis.setup_hold import bisect_min_passing
from repro.analysis.snm import largest_square_snm


class TestCrossingTime:
    def test_linear_ramp(self):
        t = np.linspace(0.0, 1.0, 11)
        wave = t.copy()  # crosses 0.55 at t = 0.55
        tc = crossing_time(t, wave, 0.55, "rise")
        assert float(tc) == pytest.approx(0.55, abs=1e-12)

    def test_fall_direction(self):
        t = np.linspace(0.0, 1.0, 11)
        wave = 1.0 - t
        tc = crossing_time(t, wave, 0.25, "fall")
        assert float(tc) == pytest.approx(0.75, abs=1e-12)

    def test_no_crossing_is_nan(self):
        t = np.linspace(0.0, 1.0, 11)
        wave = np.full(11, 0.2)
        assert np.isnan(float(crossing_time(t, wave, 0.5, "rise")))

    def test_t_min_skips_early_crossings(self):
        t = np.linspace(0.0, 2.0, 201)
        wave = np.sin(2.0 * np.pi * t)  # rises through 0.5 near t~0.083, 1.083
        tc_first = crossing_time(t, wave, 0.5, "rise")
        tc_late = crossing_time(t, wave, 0.5, "rise", t_min=0.5)
        assert float(tc_first) == pytest.approx(0.083, abs=0.02)
        assert float(tc_late) == pytest.approx(1.083, abs=0.02)

    def test_batched(self):
        t = np.linspace(0.0, 1.0, 51)
        shift = np.array([0.0, 0.2])
        wave = np.clip(t[:, None] - shift[None, :], 0.0, 1.0)
        tc = crossing_time(t, wave, 0.3, "rise")
        assert tc.shape == (2,)
        assert tc[1] - tc[0] == pytest.approx(0.2, abs=0.02)

    def test_direction_validation(self):
        t = np.linspace(0.0, 1.0, 11)
        with pytest.raises(ValueError):
            crossing_time(t, t, 0.5, "sideways")


class TestBisection:
    def test_known_boundary(self):
        boundary = np.array([0.3, 0.6, 0.45])

        def passes(x):
            return x >= boundary

        result = bisect_min_passing(passes, np.zeros(3), np.ones(3),
                                    n_iterations=20)
        np.testing.assert_allclose(result, boundary, atol=1e-5)

    def test_bad_bracket_marked_nan(self):
        # Sample 1 passes everywhere (boundary below lo): bracket invalid.
        def passes(x):
            return np.array([True, x[1] > 0.5])

        result = bisect_min_passing(passes, np.zeros(2), np.ones(2))
        assert np.isnan(result[0])
        assert result[1] == pytest.approx(0.5, abs=1e-3)

    def test_rejects_inverted_bracket(self):
        with pytest.raises(ValueError):
            bisect_min_passing(lambda x: x > 0, np.ones(2), np.zeros(2))

    def test_resolution_scales_with_iterations(self):
        boundary = np.array([np.pi / 10.0])

        def passes(x):
            return x >= boundary

        coarse = bisect_min_passing(passes, np.zeros(1), np.ones(1), n_iterations=4)
        fine = bisect_min_passing(passes, np.zeros(1), np.ones(1), n_iterations=16)
        assert abs(fine[0] - boundary[0]) < abs(coarse[0] - boundary[0])


class TestSNM:
    def test_ideal_step_vtc(self):
        # Ideal inverters with switching threshold at Vdd/2: SNM = Vdd/2.
        vdd = 0.9
        s = np.linspace(0.0, vdd, 301)
        f = np.where(s < vdd / 2.0, vdd, 0.0)
        snm = largest_square_snm(s, f, f)
        assert snm == pytest.approx(vdd / 2.0, abs=0.01)

    def test_degenerate_diagonal(self):
        s = np.linspace(0.0, 0.9, 91)
        f = 0.9 - s
        assert largest_square_snm(s, f, f) == pytest.approx(0.0, abs=1e-3)

    def test_asymmetric_lobes_take_minimum(self):
        # Shift one curve's threshold: one lobe shrinks, SNM follows it.
        vdd = 0.9
        s = np.linspace(0.0, vdd, 301)
        f_centered = np.where(s < 0.45, vdd, 0.0)
        f_shifted = np.where(s < 0.30, vdd, 0.0)
        snm_sym = largest_square_snm(s, f_centered, f_centered)
        snm_asym = largest_square_snm(s, f_shifted, f_centered)
        assert snm_asym < snm_sym

    def test_batched_curves(self):
        vdd = 0.9
        s = np.linspace(0.0, vdd, 121)
        thresholds = np.array([0.45, 0.40, 0.35])
        f = np.where(s[:, None] < thresholds[None, :], vdd, 0.0)
        snm = largest_square_snm(s, f, f)
        assert snm.shape == (3,)
        # Off-center thresholds weaken one lobe.
        assert snm[0] > snm[1] > snm[2]

    def test_smooth_tanh_vtc(self):
        # Smooth VTC pair: SNM must be strictly between 0 and Vdd/2 and
        # increase with VTC gain.
        vdd = 0.9
        s = np.linspace(0.0, vdd, 241)

        def vtc(gain):
            return vdd / 2.0 * (1.0 - np.tanh(gain * (s - vdd / 2.0) / vdd))

        snm_low = largest_square_snm(s, vtc(4.0), vtc(4.0))
        snm_high = largest_square_snm(s, vtc(20.0), vtc(20.0))
        assert 0.0 < snm_low < snm_high < vdd / 2.0

    def test_input_validation(self):
        s = np.linspace(0.0, 0.9, 10)
        with pytest.raises(ValueError):
            largest_square_snm(s, np.zeros(9), np.zeros(10))
        with pytest.raises(ValueError):
            largest_square_snm(np.array([0.0, 0.1, 0.05]), np.zeros(3), np.zeros(3))
