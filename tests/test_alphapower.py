"""Alpha-power-law baseline model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.cards import bsim_nmos_40nm
from repro.devices.alphapower import (
    AlphaPowerDevice,
    AlphaPowerParams,
    fit_alpha_power,
)
from repro.devices.base import Polarity
from repro.devices.bsim.model import BSIMDevice
from repro.fitting.nominal import iv_reference_data

VDD = 0.9


@pytest.fixture()
def device() -> AlphaPowerDevice:
    return AlphaPowerDevice(AlphaPowerParams())


class TestModel:
    def test_saturation_power_law(self, device):
        # Deep saturation: Id ~ (Vgs - VT)^alpha.
        p = device.params
        vth = float(np.asarray(p.vth))
        alpha = float(np.asarray(p.alpha))
        i1 = float(device.ids(vth + 0.30, 2.0, 0.0))
        i2 = float(device.ids(vth + 0.60, 2.0, 0.0))
        # Remove CLM (same vds) and compare the power-law ratio.
        assert i2 / i1 == pytest.approx(2.0**alpha, rel=0.02)

    def test_no_subthreshold_current(self, device):
        # The model's defining blind spot: essentially zero below VT.
        ioff = float(device.ids(0.0, VDD, 0.0))
        ion = float(device.ids(VDD, VDD, 0.0))
        assert ioff < 1e-9 * ion

    def test_triode_to_saturation_continuous(self, device):
        vdsat = float(device.saturation_voltage(VDD))
        below = float(device.ids(VDD, vdsat * 0.999, 0.0))
        above = float(device.ids(VDD, vdsat * 1.001, 0.0))
        assert above == pytest.approx(below, rel=0.01)

    def test_zero_current_at_zero_vds(self, device):
        assert float(device.ids(VDD, 0.0, 0.0)) == pytest.approx(0.0, abs=1e-15)

    def test_width_scaling(self):
        d1 = AlphaPowerDevice(AlphaPowerParams(w_nm=300.0))
        d2 = AlphaPowerDevice(AlphaPowerParams(w_nm=900.0))
        assert float(d2.idsat(VDD)) == pytest.approx(
            3.0 * float(d1.idsat(VDD)), rel=1e-9
        )

    def test_pmos_folding(self):
        d = AlphaPowerDevice(AlphaPowerParams(polarity=Polarity.PMOS))
        assert float(d.ids(0.0, 0.0, VDD)) < 0.0

    def test_charge_conservation(self, device):
        qg, qd, qs = device.charges(0.7, 0.4, 0.0)
        assert float(qg + qd + qs) == pytest.approx(0.0, abs=1e-22)

    def test_validation(self):
        with pytest.raises(ValueError):
            AlphaPowerDevice(AlphaPowerParams(alpha=-1.0))
        with pytest.raises(ValueError):
            AlphaPowerDevice(AlphaPowerParams(lam=-0.1))

    @given(vg=st.floats(0.0, 1.0), vd=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_current_finite_and_nonnegative(self, vg, vd):
        d = AlphaPowerDevice(AlphaPowerParams())
        i = float(d.ids(vg, vd, 0.0))
        assert np.isfinite(i)
        assert i >= -1e-15


class TestFit:
    def test_fit_recovers_on_current(self):
        golden = BSIMDevice(bsim_nmos_40nm())
        ref = iv_reference_data(golden, VDD)
        fit = fit_alpha_power(AlphaPowerParams(), ref)
        fitted = AlphaPowerDevice(fit.params)
        ion = float(fitted.idsat(VDD))
        ion_golden = float(golden.idsat(VDD))
        assert ion == pytest.approx(ion_golden, rel=0.05)

    def test_fit_alpha_in_modern_range(self):
        # Short-channel devices: alpha well below the long-channel 2.
        golden = BSIMDevice(bsim_nmos_40nm())
        ref = iv_reference_data(golden, VDD)
        fit = fit_alpha_power(AlphaPowerParams(), ref)
        assert 1.0 <= float(np.asarray(fit.params.alpha)) <= 1.9

    def test_fit_rejects_unknown_parameter(self):
        golden = BSIMDevice(bsim_nmos_40nm())
        ref = iv_reference_data(golden, VDD)
        with pytest.raises(KeyError):
            fit_alpha_power(AlphaPowerParams(), ref, free=("vth", "zeta"))

    def test_worse_than_vs_in_subthreshold(self):
        # The structural limitation the paper leans on: no leakage model.
        golden = BSIMDevice(bsim_nmos_40nm())
        ref = iv_reference_data(golden, VDD)
        fit = fit_alpha_power(AlphaPowerParams(), ref)
        fitted = AlphaPowerDevice(fit.params)
        ioff_golden = float(golden.ioff(VDD))
        ioff_ap = float(np.abs(fitted.ids(0.0, VDD, 0.0)))
        assert ioff_ap < 0.01 * ioff_golden  # decades too low
