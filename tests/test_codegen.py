"""Verilog-A emitter: structure, parameters, and input validation."""

import numpy as np
import pytest

from repro.codegen import generate_veriloga
from repro.data.cards import paper_alphas_nmos, vs_nmos_40nm


@pytest.fixture()
def module_text() -> str:
    return generate_veriloga(vs_nmos_40nm(), paper_alphas_nmos())


class TestStructure:
    def test_module_declaration(self, module_text):
        assert "module vs_statistical (d, g, s);" in module_text
        assert module_text.count("endmodule") == 1

    def test_includes(self, module_text):
        assert '`include "constants.vams"' in module_text
        assert '`include "disciplines.vams"' in module_text

    def test_analog_block(self, module_text):
        assert "analog begin" in module_text
        assert "I(d, s) <+ id;" in module_text

    def test_statistical_parameters_exposed(self, module_text):
        for name in ("DVT0", "DLEFF", "DWEFF", "DMU", "DCINV"):
            assert f"parameter real {name} = 0.0;" in module_text

    def test_model_equations_present(self, module_text):
        # Eq. 2-4 ingredients.
        assert "fs * qixo * vxo_i" in module_text      # Eq. 2
        assert "pow(vdsi / vdsat, BETA)" in module_text  # Eq. 3
        assert "delta_i * vdsi" in module_text          # Eq. 4 (DIBL)


class TestParameterValues:
    def test_nominal_values_rendered(self, module_text):
        card = vs_nmos_40nm()
        assert f"{float(np.asarray(card.vt0)):.6g}" in module_text
        assert f"{float(np.asarray(card.w_si)):.6e}" in module_text

    def test_pelgrom_sigmas_in_comments(self, module_text):
        assert "sigma_VT0" in module_text
        assert "sigma_Leff" in module_text

    def test_eq5_coefficient(self, module_text):
        # k_mu for the default card: B = 0.5 -> 0.975.
        assert "parameter real KMU = 0.975;" in module_text

    def test_custom_module_name(self):
        text = generate_veriloga(
            vs_nmos_40nm(), paper_alphas_nmos(), module_name="my_vs_n"
        )
        assert "module my_vs_n (d, g, s);" in text


class TestValidation:
    def test_rejects_batched_card(self):
        card = vs_nmos_40nm().replace(vt0=np.full(4, 0.42))
        with pytest.raises(ValueError):
            generate_veriloga(card, paper_alphas_nmos())

    def test_rejects_bad_module_name(self):
        with pytest.raises(ValueError):
            generate_veriloga(vs_nmos_40nm(), paper_alphas_nmos(),
                              module_name="2bad name")

    def test_rejects_invalid_card(self):
        card = vs_nmos_40nm().replace(mu_cm2=-5.0)
        with pytest.raises(ValueError):
            generate_veriloga(card, paper_alphas_nmos())
