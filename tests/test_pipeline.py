"""End-to-end characterization flow and its headline claims."""

import numpy as np
import pytest

from repro.pipeline import characterize_polarity
from repro.stats.montecarlo import golden_target_samples, vs_target_samples


class TestCharacterization:
    def test_polarity_validation(self):
        with pytest.raises(ValueError):
            characterize_polarity("cmos")

    def test_fit_quality_recorded(self, technology):
        assert technology.nmos.fit.rms_log_error < 0.1
        assert technology.pmos.fit.rms_log_error < 0.1

    def test_alphas_land_near_ground_truth(self, technology):
        # BPV should recover the synthetic fab's coefficients to ~20 %
        # (the extraction is model-mediated, not a direct read-out).
        for char, truth_avt in ((technology.nmos, 2.3), (technology.pmos, 2.86)):
            a = char.bpv.alphas
            assert a.alpha1_v_nm == pytest.approx(truth_avt, rel=0.25)
            assert a.alpha2_nm == pytest.approx(3.7, rel=0.25)
            assert a.alpha4_nm_cm2 > 0.0

    def test_bpv_reconstructs_measured_sigmas(self, technology):
        assert technology.nmos.bpv.max_sigma_error() < 0.10
        assert technology.pmos.bpv.max_sigma_error() < 0.10

    def test_table3_sigma_match(self, technology):
        # The headline validation: VS MC sigmas match golden MC sigmas
        # for Idsat and log10(Ioff) across wide/medium/short devices.
        char = technology.nmos
        for w in (1500.0, 600.0, 120.0):
            g = golden_target_samples(
                char.golden_mismatch, w, 40.0, 0.9, 3000,
                np.random.default_rng(21),
            )
            v = vs_target_samples(
                char.statistical, w, 40.0, 0.9, 3000, np.random.default_rng(22)
            )
            assert v.sigma("idsat") == pytest.approx(g.sigma("idsat"), rel=0.1)
            assert v.sigma("log10_ioff") == pytest.approx(
                g.sigma("log10_ioff"), rel=0.1
            )

    def test_sigma_ordering_with_width(self, technology):
        # Pelgrom: smaller devices fluctuate more (relative).
        char = technology.nmos
        sigmas = []
        for w in (1500.0, 600.0, 120.0):
            v = vs_target_samples(
                char.statistical, w, 40.0, 0.9, 2000, np.random.default_rng(5)
            )
            sigmas.append(v.sigma("idsat") / v.mean("idsat"))
        assert sigmas[0] < sigmas[1] < sigmas[2]

    def test_means_match_between_models(self, technology):
        char = technology.nmos
        g = golden_target_samples(
            char.golden_mismatch, 600.0, 40.0, 0.9, 2000,
            np.random.default_rng(31),
        )
        v = vs_target_samples(
            char.statistical, 600.0, 40.0, 0.9, 2000, np.random.default_rng(32)
        )
        assert v.mean("idsat") == pytest.approx(g.mean("idsat"), rel=0.05)
        assert v.mean("log10_ioff") == pytest.approx(g.mean("log10_ioff"), abs=0.3)

    def test_technology_getitem(self, technology):
        assert technology["nmos"] is technology.nmos
        with pytest.raises(KeyError):
            technology["finfet"]
