"""Tests for the public content-addressed spec fingerprint (PR 7).

``repro.api.fingerprint`` is a release-stable contract: the analysis
service files results (and checkpoints) under these hashes, so a store
written today must stay readable after any refactor.  The golden hex
digests pinned at the bottom are the enforcement — if one of these
tests fails, either revert the encoding change or write a store
migration, never just update the constant.
"""

import dataclasses

import numpy as np
import pytest

from repro.api import (
    Execution,
    MonteCarlo,
    Sweep,
    Yield,
    canonical_document,
    fingerprint,
    strip_execution,
)
from repro.stats import ParameterMetric


def _yield_spec(**overrides) -> Yield:
    base = dict(
        metric=ParameterMetric("vt0"), threshold=0.55, shifts={"vt0": 3.0},
        n_samples=2048, n_rounds=2, n_per_round=512, block_size=128,
        w_nm=600.0, l_nm=40.0, fail_below=False,
    )
    base.update(overrides)
    return Yield(**base)


class TestStripExecution:
    def test_removes_top_level_execution(self):
        spec = MonteCarlo(n_samples=500, execution=Execution(workers=4))
        stripped = strip_execution(spec)
        assert stripped.execution is None
        assert stripped.n_samples == 500

    def test_recurses_into_wrapped_specs(self):
        sweep = Sweep(
            MonteCarlo(n_samples=500, execution=Execution(workers=4)),
            over={"w_nm": (600.0, 1200.0)},
            execution=Execution(workers=2, shard_size=1),
        )
        stripped = strip_execution(sweep)
        assert stripped.execution is None
        assert stripped.spec.execution is None
        # The workload fields are untouched.
        assert stripped.spec.n_samples == 500
        assert stripped.axes == sweep.axes

    def test_identity_when_nothing_to_strip(self):
        spec = MonteCarlo(n_samples=500)
        assert strip_execution(spec) is spec
        sweep = Sweep(spec, over={"w_nm": (600.0,)})
        assert strip_execution(sweep) is sweep

    def test_plain_values_pass_through(self):
        assert strip_execution(3) == 3
        assert strip_execution(("a", 1)) == ("a", 1)


class TestFingerprint:
    def test_execution_invariance(self):
        """Scheduling must never change the content address."""
        bare = MonteCarlo(n_samples=2000)
        variants = [
            MonteCarlo(n_samples=2000, execution=Execution(workers=8)),
            MonteCarlo(n_samples=2000,
                       execution=Execution(shard_size=64, wave_size=2)),
            MonteCarlo(n_samples=2000,
                       execution=Execution(checkpoint="/tmp/x")),
        ]
        for spec in variants:
            assert fingerprint(spec) == fingerprint(bare)

    def test_workload_fields_discriminate(self):
        base = MonteCarlo(n_samples=2000)
        assert fingerprint(MonteCarlo(n_samples=2001)) != fingerprint(base)
        assert fingerprint(MonteCarlo(n_samples=2000, seed_offset=1)) != (
            fingerprint(base)
        )
        assert fingerprint(MonteCarlo(n_samples=2000, polarity="pmos")) != (
            fingerprint(base)
        )

    def test_seed_inclusion(self):
        spec = MonteCarlo(n_samples=2000)
        assert fingerprint(spec, seed=1) != fingerprint(spec, seed=2)
        assert fingerprint(spec, seed=1) != fingerprint(spec)

    def test_shape(self):
        digest = fingerprint(MonteCarlo())
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_closure_metric_has_no_address(self):
        spec = _yield_spec(metric=lambda params: np.asarray(params.vt0))
        with pytest.raises(TypeError):
            canonical_document(spec)

    def test_canonical_document_is_tagged_json(self):
        document = canonical_document(MonteCarlo(n_samples=2000))
        assert document.startswith('{"__dataclass__":"repro.api.specs:MonteCarlo"')
        assert '"execution":null' in document

    def test_sweep_point_identity(self):
        """A sweep's fingerprint differs from its points' — the grid is
        part of the workload."""
        spec = MonteCarlo(n_samples=2000)
        sweep = Sweep(spec, over={"w_nm": (600.0, 1200.0)})
        assert fingerprint(sweep) != fingerprint(spec)
        assert fingerprint(sweep) != fingerprint(sweep.point_spec(0))


class TestGoldenFingerprints:
    """Pinned store keys — the release-stability contract itself.

    Computed from the canonical tagged-JSON documents at PR 7; any
    change here invalidates every existing service store.
    """

    def test_montecarlo(self):
        spec = MonteCarlo(n_samples=2000, w_nm=600.0, l_nm=40.0)
        assert fingerprint(spec) == (
            "8060a75984af48bcb1dabca8051314a8d8e1ae3a5d3750b68579cde946f8100c"
        )
        assert fingerprint(spec, seed=424242) == (
            "b964848861d0b9694e9ec142971c653d816b8d354b539111429706362af082be"
        )
        # Execution options hash identically (execution-stripped key).
        assert fingerprint(
            dataclasses.replace(spec, execution=Execution(workers=16))
        ) == fingerprint(spec)

    def test_yield(self):
        assert fingerprint(_yield_spec()) == (
            "e7fb27b75c35d65e6dc4c4eb9d4ec652e28cc5e5f8e41f9c647dbcb7e2b25d7c"
        )

    def test_sweep(self):
        sweep = Sweep(MonteCarlo(n_samples=2000, w_nm=600.0, l_nm=40.0),
                      over={"w_nm": (600.0, 1200.0)})
        assert fingerprint(sweep) == (
            "fbee4dd5eae571dc733f242495ea794ea4509bf15aa5c65f5e4552d674a783ed"
        )
