"""Importance sampling: unbiasedness and variance reduction."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.data.cards import paper_alphas_nmos, vs_nmos_40nm
from repro.devices.vs.model import VSDevice
from repro.devices.vs.statistical import StatisticalVSModel
from repro.fitting.targets import idsat
from repro.stats.importance import (
    estimate_failure_probability,
    importance_weights,
)


@pytest.fixture()
def model():
    return StatisticalVSModel(vs_nmos_40nm(), paper_alphas_nmos())


class TestWeights:
    def test_zero_shift_unit_weights(self):
        deviations = {"vt0": np.array([0.1, -0.2])}
        w = importance_weights(deviations, {"vt0": 0.0}, {"vt0": 0.05})
        np.testing.assert_allclose(w, 1.0)

    def test_weight_is_density_ratio(self):
        sigma = 0.02
        shift = 3.0
        x = np.array([0.01, 0.06, -0.01])
        w = importance_weights({"vt0": x}, {"vt0": shift}, {"vt0": sigma})
        expected = sps.norm.pdf(x, 0.0, sigma) / sps.norm.pdf(
            x, shift * sigma, sigma
        )
        np.testing.assert_allclose(w, expected, rtol=1e-9)


class TestRelativeError:
    def test_zero_failures_returns_inf(self, model, rng):
        # Unreachable threshold: zero failures observed.  The estimate
        # must report relative_error == inf (not NaN, not raise) so
        # adaptive stop rules can compare it against a tolerance.
        threshold = float(np.asarray(model.nominal.vt0)) - 1.0
        estimate = estimate_failure_probability(
            model,
            metric=lambda params: np.asarray(params.vt0),
            threshold=threshold,
            shifts={"vt0": 2.0},
            n_samples=500,
            rng=rng,
            w_nm=600.0,
            l_nm=40.0,
            fail_below=True,
        )
        assert estimate.probability == 0.0
        assert estimate.relative_error == np.inf

    def test_degenerate_estimates_never_return_nan(self):
        from repro.stats.importance import FailureEstimate

        zero = FailureEstimate(probability=0.0, std_error=0.0,
                               n_samples=100, effective_samples=0.0)
        assert zero.relative_error == np.inf
        # A single sample leaves std (ddof=1) NaN; still inf, not NaN.
        single = FailureEstimate(probability=0.5, std_error=np.nan,
                                 n_samples=1, effective_samples=1.0)
        assert single.relative_error == np.inf
        nan_prob = FailureEstimate(probability=np.nan, std_error=0.1,
                                   n_samples=10, effective_samples=10.0)
        assert nan_prob.relative_error == np.inf

    def test_single_observed_failure_returns_inf(self):
        # One failing sample leaves the variance estimate resting on a
        # single nonzero contribution: under weighted sampling the
        # reported std error can be near zero when that weight
        # dominates, so a finite (tiny!) relative error here would stop
        # an adaptive run on a statistically meaningless estimate.
        from repro.stats.importance import FailureEstimate

        single_fail = FailureEstimate(
            probability=1e-6, std_error=1e-9, n_samples=1000,
            effective_samples=3.0, n_failures=1,
        )
        assert single_fail.relative_error == np.inf
        two_fails = FailureEstimate(
            probability=1e-6, std_error=5e-7, n_samples=1000,
            effective_samples=30.0, n_failures=2,
        )
        assert two_fails.relative_error == 0.5

    def test_legacy_estimate_without_failure_count_still_guards(self):
        # n_failures=None (legacy construction) keeps the probability
        # and std-error guards; a finite well-posed estimate passes
        # through untouched.
        from repro.stats.importance import FailureEstimate

        legacy = FailureEstimate(probability=1e-3, std_error=1e-4,
                                 n_samples=1000, effective_samples=400.0)
        assert legacy.relative_error == pytest.approx(0.1)

    def test_single_sample_run_is_warning_free(self, model, rng):
        # A 1-sample run must not emit the numpy ddof RuntimeWarning nor
        # produce NaN: std_error is an explicit inf by policy.
        import warnings

        threshold = float(np.asarray(model.nominal.vt0))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            estimate = estimate_failure_probability(
                model,
                metric=lambda params: np.asarray(params.vt0),
                threshold=threshold,
                shifts={"vt0": 1.0},
                n_samples=1,
                rng=rng,
                w_nm=600.0,
                l_nm=40.0,
            )
        assert estimate.std_error == np.inf
        assert estimate.relative_error == np.inf
        assert not np.isnan(estimate.probability)

    def test_all_zero_weights_are_inf_not_nan(self):
        # Zero weight mass (e.g. every drawn weight underflowed): the
        # Kish ESS is 0 by convention and the relative error inf — no
        # 0/0 NaN anywhere.
        from repro.runtime import FailureAccumulator

        acc = FailureAccumulator().update(
            np.ones(50, dtype=bool), np.zeros(50)
        )
        assert acc.effective_samples == 0.0
        assert acc.probability == 0.0
        assert acc.relative_error() == np.inf
        assert not np.isnan(acc.relative_error())


class TestAnalyticRecovery:
    def test_gaussian_tail_probability(self, model, rng):
        # Failure = sampled VT0 deviation beyond +4 sigma.  Analytic
        # P = Phi(-4) ~ 3.17e-5; plain MC at n=4000 would see ~0 events.
        sigma_vt = model.sigmas(600.0, 40.0)["vt0"]
        nominal_vt = float(np.asarray(model.nominal.vt0))
        threshold = nominal_vt + 4.0 * sigma_vt

        estimate = estimate_failure_probability(
            model,
            metric=lambda params: np.asarray(params.vt0),
            threshold=threshold,
            shifts={"vt0": 4.0},
            n_samples=4000,
            rng=rng,
            w_nm=600.0,
            l_nm=40.0,
            fail_below=False,
        )
        analytic = float(sps.norm.sf(4.0))
        assert estimate.probability == pytest.approx(analytic, rel=0.15)
        assert estimate.relative_error < 0.1

    def test_unbiased_at_moderate_threshold(self, model, rng):
        # 2-sigma threshold: compare IS against plain MC.
        sigma_vt = model.sigmas(600.0, 40.0)["vt0"]
        nominal_vt = float(np.asarray(model.nominal.vt0))
        threshold = nominal_vt + 2.0 * sigma_vt

        est = estimate_failure_probability(
            model,
            metric=lambda params: np.asarray(params.vt0),
            threshold=threshold,
            shifts={"vt0": 2.0},
            n_samples=6000,
            rng=rng,
            w_nm=600.0,
            l_nm=40.0,
            fail_below=False,
        )
        assert est.probability == pytest.approx(float(sps.norm.sf(2.0)),
                                                rel=0.1)

    def test_variance_reduction_vs_plain_mc(self, model):
        # Same budget: the IS relative error at a 3.5-sigma event must be
        # far below plain MC's (which is ~1/sqrt(n*p)).
        sigma_vt = model.sigmas(600.0, 40.0)["vt0"]
        nominal_vt = float(np.asarray(model.nominal.vt0))
        threshold = nominal_vt + 3.5 * sigma_vt
        n = 3000

        est = estimate_failure_probability(
            model,
            metric=lambda params: np.asarray(params.vt0),
            threshold=threshold,
            shifts={"vt0": 3.5},
            n_samples=n,
            rng=np.random.default_rng(0),
            w_nm=600.0, l_nm=40.0,
            fail_below=False,
        )
        p = float(sps.norm.sf(3.5))
        plain_mc_rel_error = 1.0 / np.sqrt(n * p)   # ~1.2 at this budget
        assert est.relative_error < 0.2 * plain_mc_rel_error


class TestDeviceMetric:
    def test_low_ion_failure_probability(self, model, rng):
        # Failure = on-current below (mean - ~3.9 sigma): needs high VT0,
        # low mobility.  The shift pushes both; validate against a brute
        # 2e6-sample plain MC reference (cheap at device level).
        device = VSDevice(model.nominal.replace(w_nm=600.0, l_nm=40.0))
        ion_nominal = float(np.asarray(idsat(device, 0.9)).squeeze())
        threshold = 0.85 * ion_nominal

        metric = lambda params: np.asarray(idsat(VSDevice(params), 0.9))
        est = estimate_failure_probability(
            model,
            metric=metric,
            threshold=threshold,
            shifts={"vt0": 3.0, "mu": -2.0},
            n_samples=8000,
            rng=rng,
            w_nm=600.0, l_nm=40.0,
            fail_below=True,
        )
        reference = model.sample_device(
            2_000_000, np.random.default_rng(123), w_nm=600.0, l_nm=40.0
        )
        p_plain = float(np.mean(np.asarray(idsat(reference, 0.9)) < threshold))

        assert est.relative_error < 0.5
        assert est.probability == pytest.approx(p_plain, rel=0.6)
        # IS reaches this accuracy with 250x fewer samples.
        assert est.n_samples * 250 <= 2_000_000

    def test_validation(self, model, rng):
        with pytest.raises(KeyError):
            estimate_failure_probability(
                model, lambda p: np.asarray(p.vt0), 0.5,
                {"bogus": 1.0}, 100, rng,
            )
        with pytest.raises(ValueError):
            estimate_failure_probability(
                model, lambda p: np.asarray(p.vt0), 0.5,
                {"vt0": 1.0}, 0, rng,
            )
