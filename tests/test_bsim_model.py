"""BSIM4-lite golden model: transport physics and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import PHI_T_NOMINAL
from repro.data.cards import bsim_nmos_40nm, bsim_pmos_40nm
from repro.devices.bsim.model import BSIMDevice
from repro.devices.bsim.mismatch import BSIMMismatch, MismatchSpec

VDD = 0.9


@pytest.fixture()
def nmos() -> BSIMDevice:
    return BSIMDevice(bsim_nmos_40nm(300.0, 40.0))


@pytest.fixture()
def pmos() -> BSIMDevice:
    return BSIMDevice(bsim_pmos_40nm(300.0, 40.0))


class TestThreshold:
    def test_dibl_lowers_threshold(self, nmos):
        assert float(nmos.threshold_voltage(VDD)) < float(nmos.threshold_voltage(0.0))

    def test_rolloff_lowers_short_channel_threshold(self):
        long_ch = BSIMDevice(bsim_nmos_40nm(300.0, 200.0))
        short_ch = BSIMDevice(bsim_nmos_40nm(300.0, 40.0))
        assert float(short_ch.threshold_voltage(0.0)) < float(
            long_ch.threshold_voltage(0.0)
        )


class TestTransport:
    def test_mobility_degrades_with_gate_drive(self, nmos):
        mu_low = float(nmos.effective_mobility(0.4, 0.0))
        mu_high = float(nmos.effective_mobility(1.0, 0.0))
        assert mu_high < mu_low

    def test_vdsat_has_thermal_floor(self, nmos):
        vdsat_off = float(nmos.saturation_voltage(0.0, 0.1))
        assert vdsat_off > PHI_T_NOMINAL  # ~2 n phit floor

    def test_subthreshold_slope(self, nmos):
        # Current drops ~one decade per n*phit*ln10 of gate drive below VT.
        n = float(np.asarray(nmos.params.nfactor))
        step = n * PHI_T_NOMINAL * np.log(10.0)
        i1 = float(nmos.ids(0.15, VDD, 0.0))
        i2 = float(nmos.ids(0.15 - step, VDD, 0.0))
        assert i1 / i2 == pytest.approx(10.0, rel=0.15)

    def test_output_conductance_positive(self, nmos):
        # CLM keeps the saturation current gently rising.
        i1 = float(nmos.ids(VDD, 0.6, 0.0))
        i2 = float(nmos.ids(VDD, 0.9, 0.0))
        assert i2 > i1


class TestCurrent:
    def test_zero_at_vds_zero(self, nmos):
        assert float(nmos.ids(VDD, 0.0, 0.0)) == pytest.approx(0.0, abs=1e-12)

    def test_width_scaling(self):
        i1 = float(BSIMDevice(bsim_nmos_40nm(300.0, 40.0)).idsat(VDD))
        i2 = float(BSIMDevice(bsim_nmos_40nm(900.0, 40.0)).idsat(VDD))
        assert i2 == pytest.approx(3.0 * i1, rel=1e-9)

    def test_on_current_40nm_class(self, nmos):
        ion_ua_um = float(nmos.idsat(VDD)) * 1e6 / 0.3
        assert 400.0 < ion_ua_um < 1500.0

    def test_source_drain_antisymmetry(self, nmos):
        i_fwd = float(nmos.ids(0.7, 0.5, 0.1))
        i_rev = float(nmos.ids(0.7, 0.1, 0.5))
        assert i_rev == pytest.approx(-i_fwd, rel=1e-9)

    def test_pmos_conducts_downward(self, pmos):
        assert float(pmos.ids(0.0, 0.0, VDD)) < 0.0

    def test_models_differ_from_vs(self, nmos):
        # Sanity: the golden model is genuinely a different model — its
        # current at an intermediate bias differs from the VS card's.
        from repro.data.cards import vs_nmos_40nm
        from repro.devices.vs.model import VSDevice

        vs = VSDevice(vs_nmos_40nm(300.0, 40.0))
        i_bsim = float(nmos.ids(0.6, 0.3, 0.0))
        i_vs = float(vs.ids(0.6, 0.3, 0.0))
        assert abs(i_bsim - i_vs) / abs(i_bsim) > 0.01


class TestCharges:
    def test_charge_conservation(self, nmos):
        qg, qd, qs = nmos.charges(0.8, 0.4, 0.0)
        assert float(qg + qd + qs) == pytest.approx(0.0, abs=1e-22)

    def test_cgg_positive_on_and_off(self, nmos):
        assert float(nmos.cgg(0.0, 0.0, 0.0)) > 0.0
        assert float(nmos.cgg(VDD, 0.0, 0.0)) > 0.0


class TestMismatch:
    def test_sigma_area_scaling(self):
        spec = MismatchSpec()
        s_small = spec.sigmas(120.0, 40.0)
        s_large = spec.sigmas(1500.0, 40.0)
        ratio = s_small["vth0"] / s_large["vth0"]
        assert ratio == pytest.approx(np.sqrt(1500.0 / 120.0), rel=1e-9)

    def test_sigma_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            MismatchSpec().sigmas(-10.0, 40.0)

    def test_sampling_statistics(self, rng):
        spec = MismatchSpec(avt_v_nm=2.3)
        mm = BSIMMismatch(bsim_nmos_40nm(), spec)
        cards = mm.sample(4000, rng, w_nm=600.0, l_nm=40.0)
        sigma_expected = 2.3 / np.sqrt(600.0 * 40.0)
        assert np.std(cards.vth0, ddof=1) == pytest.approx(sigma_expected, rel=0.1)
        assert np.mean(cards.vth0) == pytest.approx(
            float(np.asarray(bsim_nmos_40nm().vth0)), abs=3e-3
        )

    def test_samples_independent_between_calls(self, rng):
        mm = BSIMMismatch(bsim_nmos_40nm(), MismatchSpec())
        a = mm.sample(100, rng).vth0
        b = mm.sample(100, rng).vth0
        assert not np.allclose(a, b)

    def test_rejects_nonpositive_count(self, rng):
        mm = BSIMMismatch(bsim_nmos_40nm(), MismatchSpec())
        with pytest.raises(ValueError):
            mm.sample(0, rng)


class TestPropertyBased:
    @given(
        vg=st.floats(-0.2, 1.1),
        vd=st.floats(0.0, 1.1),
    )
    @settings(max_examples=50, deadline=None)
    def test_current_finite(self, vg, vd):
        device = BSIMDevice(bsim_nmos_40nm())
        assert np.isfinite(float(device.ids(vg, vd, 0.0)))

    @given(vgs=st.floats(0.0, 1.0), vds=st.floats(0.001, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_vgs(self, vgs, vds):
        device = BSIMDevice(bsim_nmos_40nm())
        i1 = float(device.ids(vgs, vds, 0.0))
        i2 = float(device.ids(vgs + 0.05, vds, 0.0))
        assert i2 >= i1
