"""Property tests: every AnalysisSpec round-trips the tagged-JSON codec.

The analysis service's wire format *is* ``repro.api.serialize`` — a
spec that fails to round-trip cannot be submitted, fingerprinted, or
stored.  Hypothesis drives randomized instances of every spec type
(including Sweep-wrapped and Yield) through ``dumps``/``loads`` and
requires the decoded object to compare equal to the original — which,
specs being frozen dataclasses of plain data, is full field equality
re-validated by ``__post_init__``.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.api import (
    Characterize,
    CharacterizeLibrary,
    Execution,
    FactoryMap,
    ImportanceSampling,
    MonteCarlo,
    Sweep,
    Yield,
)
from repro.api.serialize import dumps, loads
from repro.stats import ParameterMetric
from repro.stats.pelgrom import PARAMETER_ORDER

SETTINGS = settings(max_examples=30, deadline=None)

finite = dict(allow_nan=False, allow_infinity=False)
geometry = st.floats(min_value=40.0, max_value=4000.0, **finite)
polarity = st.sampled_from(("nmos", "pmos"))
model = st.sampled_from(("vs", "bsim"))
parameter = st.sampled_from(PARAMETER_ORDER)
metric = parameter.map(ParameterMetric)
shifts = st.dictionaries(
    parameter, st.floats(min_value=-6.0, max_value=6.0, **finite),
    min_size=1, max_size=len(PARAMETER_ORDER),
).map(lambda d: tuple(d.items()))

execution = st.one_of(
    st.none(),
    st.builds(
        Execution,
        shard_size=st.one_of(st.none(), st.integers(1, 4096)),
        workers=st.integers(1, 8),
        target_rel_err=st.one_of(
            st.none(), st.floats(min_value=1e-3, max_value=1.0, **finite)
        ),
        min_samples=st.integers(0, 1000),
        max_samples=st.one_of(st.none(), st.integers(1, 100000)),
        wave_size=st.one_of(st.none(), st.integers(1, 64)),
        checkpoint=st.one_of(st.none(), st.just("/tmp/repro-ckpt/prefix")),
    ),
)

montecarlo = st.builds(
    MonteCarlo,
    n_samples=st.integers(1, 100000),
    polarity=polarity,
    model=model,
    w_nm=geometry,
    l_nm=geometry,
    seed_offset=st.integers(0, 64),
    execution=execution,
)

importance = st.builds(
    ImportanceSampling,
    metric=metric,
    threshold=st.floats(min_value=-2.0, max_value=2.0, **finite),
    shifts=shifts,
    n_samples=st.integers(1, 100000),
    polarity=polarity,
    w_nm=st.one_of(st.none(), geometry),
    l_nm=st.one_of(st.none(), geometry),
    fail_below=st.booleans(),
    seed_offset=st.integers(0, 64),
    execution=execution,
)

yield_spec = st.builds(
    Yield,
    metric=metric,
    threshold=st.floats(min_value=-2.0, max_value=2.0, **finite),
    shifts=shifts,
    n_samples=st.integers(1, 100000),
    n_rounds=st.integers(0, 6),
    n_per_round=st.integers(1, 4096),
    n_components=st.integers(1, 4),
    elite_fraction=st.floats(min_value=0.01, max_value=0.99, **finite),
    smoothing=st.floats(min_value=0.01, max_value=1.0,
                        exclude_min=False, **finite),
    block_size=st.integers(1, 1024),
    polarity=polarity,
    fail_below=st.booleans(),
    seed_offset=st.integers(0, 64),
    execution=execution,
)

# FactoryMap's work callable must be codec-expressible for service use;
# a frozen-dataclass callable is the canonical picklable form (the
# round trip exercises serialization, not execution).
factory_map = st.builds(
    FactoryMap,
    work=metric,
    n_samples=st.integers(1, 100000),
    model=model,
    seed_offset=st.integers(0, 64),
    execution=execution,
)

grid_axis = st.one_of(
    st.none(),
    st.lists(
        st.floats(min_value=1e-3, max_value=10.0, **finite),
        min_size=1, max_size=3, unique=True,
    ).map(lambda vals: tuple(sorted(vals))),
)

characterize = st.builds(
    Characterize,
    cell=st.sampled_from(("inv", "nand2", "dff")),
    vdd=st.floats(min_value=0.4, max_value=1.2, **finite),
    slews=grid_axis,
    loads=grid_axis,
    n_mc=st.integers(0, 64),
    model=model,
    seed_offset=st.integers(0, 64),
    execution=execution,
)

characterize_library = st.builds(
    CharacterizeLibrary,
    cells=st.lists(
        st.sampled_from(("inv", "nand2", "dff")),
        min_size=1, max_size=3, unique=True,
    ).map(tuple),
    vdd=st.floats(min_value=0.4, max_value=1.2, **finite),
    n_mc=st.integers(0, 64),
    seed_offset=st.integers(0, 64),
    execution=execution,
)

# Sweep-level execution must not carry an adaptive error target.
sweep_execution = st.one_of(
    st.none(),
    st.builds(
        Execution,
        shard_size=st.one_of(st.none(), st.integers(1, 8)),
        workers=st.integers(1, 8),
        max_samples=st.one_of(st.none(), st.integers(1, 64)),
        checkpoint=st.one_of(st.none(), st.just("/tmp/repro-ckpt/sweep")),
    ),
)

axis_values = st.lists(geometry, min_size=1, max_size=3, unique=True).map(tuple)
sweep = st.builds(
    Sweep,
    spec=st.one_of(montecarlo, yield_spec),
    over=st.fixed_dictionaries({"w_nm": axis_values}),
    seed_mode=st.sampled_from(("spawn", "legacy")),
    execution=sweep_execution,
)


def _roundtrip(spec):
    decoded = loads(dumps(spec))
    assert type(decoded) is type(spec)
    assert decoded == spec


@SETTINGS
@given(montecarlo)
def test_montecarlo_roundtrip(spec):
    _roundtrip(spec)


@SETTINGS
@given(importance)
def test_importance_roundtrip(spec):
    _roundtrip(spec)


@SETTINGS
@given(yield_spec)
def test_yield_roundtrip(spec):
    _roundtrip(spec)


@SETTINGS
@given(factory_map)
def test_factory_map_roundtrip(spec):
    _roundtrip(spec)


@SETTINGS
@given(characterize)
def test_characterize_roundtrip(spec):
    _roundtrip(spec)


@SETTINGS
@given(characterize_library)
def test_characterize_library_roundtrip(spec):
    _roundtrip(spec)


@SETTINGS
@given(sweep)
def test_sweep_roundtrip(spec):
    _roundtrip(spec)


def test_decoded_document_revalidates():
    """Decoding rebuilds through constructors: a tampered document that
    violates spec invariants raises instead of producing a bad spec."""
    import json

    from repro.api.serialize import decode, encode

    raw = json.loads(json.dumps(encode(MonteCarlo(n_samples=100))))
    raw["fields"]["n_samples"] = -5
    with pytest.raises(ValueError):
        decode(raw)
