"""Nominal VS extraction (Fig. 1) and target measurement."""

import numpy as np
import pytest

from repro.data.cards import bsim_nmos_40nm, bsim_pmos_40nm, vs_nmos_40nm, vs_pmos_40nm
from repro.devices.bsim.model import BSIMDevice
from repro.devices.vs.model import VSDevice
from repro.fitting import (
    cgg_at_vdd,
    fit_vs_to_reference,
    idsat,
    ioff,
    iv_reference_data,
    log10_ioff,
    measure_targets,
)

VDD = 0.9


class TestTargets:
    def test_idsat_positive_both_polarities(self):
        n = BSIMDevice(bsim_nmos_40nm())
        p = BSIMDevice(bsim_pmos_40nm())
        assert float(idsat(n, VDD)) > 0.0
        assert float(idsat(p, VDD)) > 0.0

    def test_log10_ioff_consistent(self):
        n = BSIMDevice(bsim_nmos_40nm())
        assert float(log10_ioff(n, VDD)) == pytest.approx(
            np.log10(float(ioff(n, VDD)))
        )

    def test_cgg_positive(self):
        n = BSIMDevice(bsim_nmos_40nm())
        assert float(cgg_at_vdd(n, VDD)) > 0.0

    def test_measure_targets_keys(self):
        n = BSIMDevice(bsim_nmos_40nm())
        m = measure_targets(n, VDD)
        assert set(m) == {"idsat", "log10_ioff", "cgg"}

    def test_pmos_targets_match_folded_nmos_convention(self):
        p = BSIMDevice(bsim_pmos_40nm())
        # idsat must equal |Id| at vg=0, vd=0, vs=vdd for PMOS.
        direct = abs(float(p.ids(0.0, 0.0, VDD)))
        assert float(idsat(p, VDD)) == pytest.approx(direct)


class TestReferenceData:
    def test_shapes(self):
        ref = iv_reference_data(BSIMDevice(bsim_nmos_40nm()), VDD, n_gate=21,
                                n_drain=17)
        assert ref.id_transfer.shape == (2, 21)
        assert ref.id_output.shape == (3, 17)

    def test_currents_increase_with_gate_bias(self):
        ref = iv_reference_data(BSIMDevice(bsim_nmos_40nm()), VDD)
        assert ref.id_output[-1].max() > ref.id_output[0].max()


class TestFit:
    @pytest.mark.parametrize("polarity", ["nmos", "pmos"])
    def test_fit_quality(self, polarity):
        golden = BSIMDevice(
            bsim_nmos_40nm() if polarity == "nmos" else bsim_pmos_40nm()
        )
        start = vs_nmos_40nm() if polarity == "nmos" else vs_pmos_40nm()
        ref = iv_reference_data(golden, VDD)
        fit = fit_vs_to_reference(start, ref)
        # Fig.-1 quality: < 0.1 decade RMS over the transfer curves.
        assert fit.rms_log_error < 0.1

        fitted = VSDevice(fit.params)
        m_golden = measure_targets(golden, VDD)
        m_vs = measure_targets(fitted, VDD)
        assert float(m_vs["idsat"]) == pytest.approx(
            float(m_golden["idsat"]), rel=0.05
        )
        assert float(m_vs["cgg"]) == pytest.approx(float(m_golden["cgg"]), rel=0.05)
        assert float(m_vs["log10_ioff"]) == pytest.approx(
            float(m_golden["log10_ioff"]), abs=0.3
        )

    def test_fit_rejects_unknown_parameter(self):
        golden = BSIMDevice(bsim_nmos_40nm())
        ref = iv_reference_data(golden, VDD)
        with pytest.raises(KeyError):
            fit_vs_to_reference(vs_nmos_40nm(), ref, free=("vt0", "bogus"))

    def test_cinv_taken_from_cgg_measurement(self):
        golden = BSIMDevice(bsim_nmos_40nm())
        ref = iv_reference_data(golden, VDD)
        fit = fit_vs_to_reference(vs_nmos_40nm(), ref, set_cinv_from_cgg=True)
        # Fitted Cinv should land near the golden Cox (same gate stack).
        assert float(np.asarray(fit.params.cinv_uf_cm2)) == pytest.approx(
            float(np.asarray(bsim_nmos_40nm().cox_uf_cm2)), rel=0.15
        )
