"""Cell characterization: lookup tables and measured timing trends."""

import numpy as np
import pytest

from repro.cells import InverterSpec, MonteCarloDeviceFactory, NominalDeviceFactory
from repro.charlib import (
    LookupTable2D,
    characterize_cell,
    characterize_cell_statistics,
)


class TestLookupTable:
    def test_exact_at_grid_points(self):
        table = LookupTable2D([1.0, 2.0], [10.0, 20.0],
                              [[1.0, 2.0], [3.0, 4.0]])
        assert table(1.0, 10.0) == pytest.approx(1.0)
        assert table(2.0, 20.0) == pytest.approx(4.0)

    def test_bilinear_midpoint(self):
        table = LookupTable2D([1.0, 2.0], [10.0, 20.0],
                              [[1.0, 2.0], [3.0, 4.0]])
        assert table(1.5, 15.0) == pytest.approx(2.5)

    def test_clamps_outside_grid(self):
        table = LookupTable2D([1.0, 2.0], [10.0, 20.0],
                              [[1.0, 2.0], [3.0, 4.0]])
        assert table(0.0, 0.0) == pytest.approx(1.0)
        assert table(99.0, 99.0) == pytest.approx(4.0)

    def test_vectorized_queries(self):
        table = LookupTable2D([1.0, 2.0], [10.0, 20.0],
                              [[1.0, 2.0], [3.0, 4.0]])
        out = table(np.array([1.0, 2.0]), np.array([10.0, 20.0]))
        np.testing.assert_allclose(out, [1.0, 4.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            LookupTable2D([2.0, 1.0], [10.0, 20.0], np.zeros((2, 2)))
        with pytest.raises(ValueError):
            LookupTable2D([1.0, 2.0], [10.0, 20.0], np.zeros((3, 2)))


class TestCharacterization:
    @pytest.fixture(scope="class")
    def timing(self, technology):
        factory = NominalDeviceFactory(technology, "vs")
        return characterize_cell(
            factory,
            InverterSpec(600.0, 300.0),
            vdd=0.9,
            slews=(5e-12, 20e-12),
            loads=(1e-15, 4e-15),
        )

    def test_tables_built_for_both_edges(self, timing):
        assert set(timing.delay) == {"tphl", "tplh"}
        assert timing.delay["tphl"].shape == (2, 2)

    def test_delay_grows_with_load(self, timing):
        table = timing.delay["tphl"].values
        assert np.all(table[:, 1] > table[:, 0])

    def test_delay_grows_with_input_slew(self, timing):
        table = timing.delay["tphl"].values
        assert np.all(table[1, :] > table[0, :])

    def test_output_slew_grows_with_load(self, timing):
        table = timing.transition["tphl"].values
        assert np.all(table[:, 1] > table[:, 0])

    def test_values_in_picosecond_decade(self, timing):
        assert np.all(timing.delay["tphl"].values > 0.2e-12)
        assert np.all(timing.delay["tphl"].values < 100e-12)


class TestStatisticalCharacterization:
    def test_arc_statistics(self, technology):
        stats = characterize_cell_statistics(
            lambda: MonteCarloDeviceFactory(technology, 80, model="vs",
                                            seed=21),
            InverterSpec(600.0, 300.0),
        )
        assert set(stats) == {"tphl", "tplh"}
        arc = stats["tphl"]
        assert arc.samples.size >= 75
        assert arc.sigma > 0.0
        assert 1e-12 < arc.mean < 50e-12

    def test_bootstrap_draw(self, technology, rng):
        stats = characterize_cell_statistics(
            lambda: MonteCarloDeviceFactory(technology, 60, model="vs",
                                            seed=22),
        )
        draw = stats["tplh"].draw(500, rng)
        assert draw.shape == (500,)
        assert set(np.unique(draw)).issubset(set(stats["tplh"].samples))
