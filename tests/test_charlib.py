"""Cell characterization: lookup tables, arc adapters, measured trends."""

import numpy as np
import pytest

from repro.cells import (
    DFFSpec,
    InverterSpec,
    MonteCarloDeviceFactory,
    Nand2Spec,
    NominalDeviceFactory,
)
from repro.charlib import (
    ArcSamples,
    CharacterizationError,
    DFFArcs,
    InverterArcs,
    LookupTable2D,
    Nand2Arcs,
    characterize_arcs,
    characterize_cell,
    characterize_cell_statistics,
    get_adapter,
)


class TestLookupTable:
    def test_exact_at_grid_points(self):
        table = LookupTable2D([1.0, 2.0], [10.0, 20.0],
                              [[1.0, 2.0], [3.0, 4.0]])
        assert table(1.0, 10.0) == pytest.approx(1.0)
        assert table(2.0, 20.0) == pytest.approx(4.0)

    def test_bilinear_midpoint(self):
        table = LookupTable2D([1.0, 2.0], [10.0, 20.0],
                              [[1.0, 2.0], [3.0, 4.0]])
        assert table(1.5, 15.0) == pytest.approx(2.5)

    def test_clamps_outside_grid(self):
        table = LookupTable2D([1.0, 2.0], [10.0, 20.0],
                              [[1.0, 2.0], [3.0, 4.0]])
        assert table(0.0, 0.0) == pytest.approx(1.0)
        assert table(99.0, 99.0) == pytest.approx(4.0)

    def test_vectorized_queries(self):
        table = LookupTable2D([1.0, 2.0], [10.0, 20.0],
                              [[1.0, 2.0], [3.0, 4.0]])
        out = table(np.array([1.0, 2.0]), np.array([10.0, 20.0]))
        np.testing.assert_allclose(out, [1.0, 4.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            LookupTable2D([2.0, 1.0], [10.0, 20.0], np.zeros((2, 2)))
        with pytest.raises(ValueError):
            LookupTable2D([1.0, 2.0], [10.0, 20.0], np.zeros((3, 2)))

    def test_single_point_slew_axis(self):
        # Constant along the degenerate axis, interpolated along the other.
        table = LookupTable2D([1.0], [10.0, 20.0], [[1.0, 3.0]])
        assert table(0.5, 15.0) == pytest.approx(2.0)
        assert table(99.0, 10.0) == pytest.approx(1.0)

    def test_single_point_load_axis(self):
        table = LookupTable2D([1.0, 2.0], [10.0], [[1.0], [3.0]])
        assert table(1.5, 99.0) == pytest.approx(2.0)
        assert table(1.0, 0.0) == pytest.approx(1.0)

    def test_one_by_one_table_is_constant(self):
        table = LookupTable2D([1.0], [10.0], [[7.0]])
        assert table(0.0, 0.0) == pytest.approx(7.0)
        np.testing.assert_allclose(
            table(np.array([0.5, 5.0]), np.array([3.0, 30.0])), [7.0, 7.0]
        )

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            LookupTable2D([], [10.0], np.zeros((0, 1)))


class _FlatResult:
    """Synthetic transient result: one node, a constant waveform."""

    def __init__(self, times, wave):
        self.times = np.asarray(times)
        self._wave = np.asarray(wave)

    def __getitem__(self, node):
        return self._wave


class TestOutputSlew:
    def test_nan_when_threshold_never_crossed(self):
        from repro.charlib import characterize

        # A flat waveform never crosses 20 %/80 % — must be NaN, never a
        # silently nonsensical number.
        result = _FlatResult(np.linspace(0, 1e-9, 11), np.zeros(11))
        slew = characterize.output_slew(result, "out", 0.9, "rise")
        assert np.isnan(slew)

    def test_nan_for_non_positive_transition(self):
        from repro.charlib import characterize

        # 80 % crossed before 20 % after t_min (stale earlier edge):
        # a negative "transition" must come back NaN.
        times = np.linspace(0.0, 10.0, 11)
        wave = np.array([0.9, 0.8, 0.6, 0.4, 0.2, 0.05,
                         0.05, 0.05, 0.05, 0.05, 0.05])
        result = _FlatResult(times, wave)
        slew = characterize.output_slew(result, "out", 0.9, "rise")
        assert np.isnan(slew)


class TestCharacterization:
    @pytest.fixture(scope="class")
    def timing(self, technology):
        factory = NominalDeviceFactory(technology, "vs")
        return characterize_cell(
            factory,
            InverterSpec(600.0, 300.0),
            vdd=0.9,
            slews=(5e-12, 20e-12),
            loads=(1e-15, 4e-15),
        )

    def test_tables_built_for_both_edges(self, timing):
        assert set(timing.delay) == {"tphl", "tplh"}
        assert timing.delay["tphl"].shape == (2, 2)

    def test_delay_grows_with_load(self, timing):
        table = timing.delay["tphl"].values
        assert np.all(table[:, 1] > table[:, 0])

    def test_delay_grows_with_input_slew(self, timing):
        table = timing.delay["tphl"].values
        assert np.all(table[1, :] > table[0, :])

    def test_output_slew_grows_with_load(self, timing):
        table = timing.transition["tphl"].values
        assert np.all(table[:, 1] > table[:, 0])

    def test_values_in_picosecond_decade(self, timing):
        assert np.all(timing.delay["tphl"].values > 0.2e-12)
        assert np.all(timing.delay["tphl"].values < 100e-12)

    def test_carries_adapter_metadata(self, timing):
        assert [arc.name for arc in timing.arcs] == ["tphl", "tplh"]
        assert timing.liberty.function == "(!A)"

    def test_rejects_monte_carlo_factory(self, technology):
        factory = MonteCarloDeviceFactory(technology, 4, seed=3)
        with pytest.raises(ValueError, match="nominal path"):
            characterize_arcs(factory, InverterArcs())


from dataclasses import dataclass

from repro.charlib.arcs import Arc, ArcAdapter, LibertyCell


@dataclass(frozen=True)
class _NeverSwitches(ArcAdapter):
    """Adapter whose cell never crosses a threshold (all-NaN point)."""

    name: str = "DEAD"

    @property
    def arcs(self):
        return (Arc("tphl", "cell_fall", "fall_transition"),)

    @property
    def liberty(self):
        return LibertyCell(("A",), "Y", "(!A)", "A")

    def measure_point(self, factory, vdd, slew_in, c_load):
        shape = factory.batch_shape or ()
        nan = np.full(shape, np.nan) if shape else np.nan
        return {"tphl": (nan, nan)}


class TestArcAdapters:
    def test_adapter_registry(self):
        assert isinstance(get_adapter("inv"), InverterArcs)
        assert isinstance(get_adapter("nand2"), Nand2Arcs)
        assert isinstance(get_adapter("dff"), DFFArcs)
        custom = Nand2Arcs(spec=Nand2Spec(wp_nm=900.0))
        assert get_adapter(custom) is custom
        with pytest.raises(ValueError, match="unknown cell"):
            get_adapter("nor3")

    def test_nand2_characterizes_and_loads_matter(self, technology):
        factory = NominalDeviceFactory(technology, "vs")
        timing = characterize_arcs(
            factory, Nand2Arcs(), vdd=0.9,
            slews=(8e-12,), loads=(1e-15, 4e-15),
        )
        assert set(timing.delay) == {"tphl", "tplh"}
        for arc in ("tphl", "tplh"):
            values = timing.delay[arc].values
            assert np.all(values > 0.2e-12) and np.all(values < 100e-12)
            assert values[0, 1] > values[0, 0]  # heavier load, slower

    def test_dff_clk_to_q_arcs(self, technology):
        factory = NominalDeviceFactory(technology, "vs")
        timing = characterize_arcs(
            factory, DFFArcs(DFFSpec()), vdd=0.9,
            slews=(6e-12,), loads=(1e-15, 4e-15),
        )
        assert set(timing.delay) == {"tpcq_lh", "tpcq_hl"}
        assert timing.liberty.timing_type == "falling_edge"
        for arc in ("tpcq_lh", "tpcq_hl"):
            values = timing.delay[arc].values
            assert np.all(values > 0.2e-12) and np.all(values < 200e-12)
            assert values[0, 1] > values[0, 0]

    def test_nominal_dead_point_fails_loudly(self, technology):
        factory = NominalDeviceFactory(technology, "vs")
        with pytest.raises(CharacterizationError, match="DEAD arc 'tphl'"):
            characterize_arcs(factory, _NeverSwitches(),
                              slews=(5e-12,), loads=(1e-15,))


class TestStatisticalCharacterization:
    def test_arc_statistics(self, technology):
        stats = characterize_cell_statistics(
            lambda: MonteCarloDeviceFactory(technology, 80, model="vs",
                                            seed=21),
            InverterSpec(600.0, 300.0),
        )
        assert set(stats) == {"tphl", "tplh"}
        arc = stats["tphl"]
        assert arc.samples.size >= 75
        assert arc.sigma > 0.0
        assert 1e-12 < arc.mean < 50e-12

    def test_bootstrap_draw(self, technology, rng):
        stats = characterize_cell_statistics(
            lambda: MonteCarloDeviceFactory(technology, 60, model="vs",
                                            seed=22),
        )
        draw = stats["tplh"].draw(500, rng)
        assert draw.shape == (500,)
        assert set(np.unique(draw)).issubset(set(stats["tplh"].samples))

    def test_arc_samples_streamed_moments(self, rng):
        samples = rng.normal(10e-12, 1e-12, size=200)
        samples[7] = np.nan  # dropped, not propagated
        arc = ArcSamples(cell="INV", arc="tphl", slew_in=1e-12,
                         c_load=1e-15, samples=samples)
        finite = samples[np.isfinite(samples)]
        assert arc.samples.size == finite.size
        assert arc.mean == pytest.approx(float(np.mean(finite)), rel=1e-12)
        assert arc.sigma == pytest.approx(float(np.std(finite, ddof=1)),
                                          rel=1e-9)
        assert arc.stats.n == finite.size
        assert arc.edge == "tphl"  # legacy alias

    def test_arc_statistics_shim_removed(self):
        # The PR-4 DeprecationWarning shim served its one-release grace
        # period; the name must be gone from the public surface.
        import repro.charlib as charlib

        assert not hasattr(charlib, "ArcStatistics")
        assert "ArcStatistics" not in charlib.__all__
