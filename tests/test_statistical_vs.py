"""Statistical VS model: sampling semantics of Sec. II-B."""

import numpy as np
import pytest

from repro.data.cards import paper_alphas_nmos, vs_nmos_40nm
from repro.devices.vs.statistical import (
    StatisticalVSModel,
    apply_deviations,
)
from repro.stats.pelgrom import PARAMETER_ORDER


@pytest.fixture()
def model() -> StatisticalVSModel:
    return StatisticalVSModel(vs_nmos_40nm(), paper_alphas_nmos())


class TestSampling:
    def test_sample_count_and_fields(self, model, rng):
        sample = model.sample(500, rng, w_nm=600.0, l_nm=40.0)
        assert sample.n_samples == 500
        params = sample.params
        for field in ("vt0", "w_nm", "l_nm", "mu_cm2", "cinv_uf_cm2", "vxo_cm_s"):
            assert np.asarray(getattr(params, field)).shape == (500,)

    def test_sample_sigmas_match_pelgrom(self, model, rng):
        sample = model.sample(20000, rng, w_nm=600.0, l_nm=40.0)
        sig = model.sigmas(600.0, 40.0)
        assert np.std(sample.params.vt0, ddof=1) == pytest.approx(
            sig["vt0"], rel=0.05
        )
        assert np.std(sample.params.l_nm, ddof=1) == pytest.approx(
            sig["leff"], rel=0.05
        )

    def test_independent_parameters_uncorrelated(self, model, rng):
        sample = model.sample(20000, rng, w_nm=600.0, l_nm=40.0)
        d = sample.deviations
        for a in PARAMETER_ORDER:
            for b in PARAMETER_ORDER:
                if a < b:
                    r = np.corrcoef(d[a], d[b])[0, 1]
                    assert abs(r) < 0.05, f"{a} vs {b} correlated: r={r}"

    def test_vxo_is_derived_not_independent(self, model, rng):
        # vxo must correlate with mu: it is slaved through Eq. (5).
        sample = model.sample(5000, rng, w_nm=600.0, l_nm=40.0)
        r = np.corrcoef(sample.params.mu_cm2, sample.params.vxo_cm_s)[0, 1]
        assert r > 0.5

    def test_vxo_tracks_dibl_through_leff(self, model, rng):
        # With mu variation switched off, vxo still moves with Leff.
        sigma_scale_model = StatisticalVSModel(
            vs_nmos_40nm(),
            paper_alphas_nmos(),
        )
        sample = sigma_scale_model.sample(4000, rng, w_nm=600.0, l_nm=40.0)
        # Longer channel -> smaller delta -> smaller vxo (positive corr
        # between delta shift and vxo shift means negative corr with L).
        r = np.corrcoef(sample.params.l_nm, sample.params.vxo_cm_s)[0, 1]
        assert r < -0.1

    def test_sigma_scale(self, model, rng):
        s1 = model.sample(20000, rng, w_nm=600.0, l_nm=40.0, sigma_scale=1.0)
        s2 = model.sample(20000, rng, w_nm=600.0, l_nm=40.0, sigma_scale=2.0)
        assert np.std(s2.params.vt0, ddof=1) == pytest.approx(
            2.0 * np.std(s1.params.vt0, ddof=1), rel=0.1
        )

    def test_rejects_nonpositive_count(self, model, rng):
        with pytest.raises(ValueError):
            model.sample(0, rng)

    def test_geometry_dependence(self, model, rng):
        small = model.sample(8000, rng, w_nm=120.0, l_nm=40.0)
        large = model.sample(8000, rng, w_nm=1500.0, l_nm=40.0)
        assert np.std(small.params.vt0, ddof=1) > 2.0 * np.std(
            large.params.vt0, ddof=1
        )


class TestPerturbations:
    def test_perturbed_moves_one_parameter(self, model):
        card = model.perturbed(600.0, 40.0, "vt0", 1.0)
        sig = model.sigmas(600.0, 40.0)
        nominal_vt0 = float(np.asarray(model.nominal.vt0))
        assert float(card.vt0[0]) == pytest.approx(nominal_vt0 + sig["vt0"])
        # Untouched parameters stay nominal.
        assert float(card.mu_cm2[0] if np.ndim(card.mu_cm2) else card.mu_cm2) == (
            pytest.approx(float(np.asarray(model.nominal.mu_cm2)))
        )

    def test_perturbed_unknown_parameter(self, model):
        with pytest.raises(KeyError):
            model.perturbed(600.0, 40.0, "vxo", 1.0)

    def test_leff_perturbation_moves_vxo(self, model):
        card = model.perturbed(600.0, 40.0, "leff", 3.0)
        assert float(np.asarray(card.vxo_cm_s)[0]) != pytest.approx(
            float(np.asarray(model.nominal.vxo_cm_s))
        )


class TestApplyDeviations:
    def test_empty_deviation_is_nominal_geometry_override(self):
        nominal = vs_nmos_40nm()
        card = apply_deviations(nominal, 600.0, 40.0, {})
        assert float(np.asarray(card.w_nm)) == pytest.approx(600.0)
        assert float(np.asarray(card.vt0)) == pytest.approx(
            float(np.asarray(nominal.vt0))
        )

    def test_clip_prevents_nonphysical_cards(self):
        nominal = vs_nmos_40nm()
        card = apply_deviations(nominal, 600.0, 40.0, {"leff": np.array([-100.0])})
        assert float(card.l_nm[0]) > 0.0

    def test_mu_deviation_shifts_vxo_by_eq5(self):
        nominal = vs_nmos_40nm()
        mu_nom = float(np.asarray(nominal.mu_cm2))
        card = apply_deviations(nominal, 600.0, 40.0, {"mu": np.array([0.01 * mu_nom])})
        # k_mu for the default card: B = 10/(10+2*5) = 0.5 -> 0.975.
        expected = float(np.asarray(nominal.vxo_cm_s)) * (1.0 + 0.975 * 0.01)
        assert float(card.vxo_cm_s[0]) == pytest.approx(expected, rel=1e-6)
