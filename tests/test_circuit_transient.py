"""Transient engine: RC analytics, charge conservation, batching."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    GROUND,
    DC,
    Pulse,
    Step,
    transient,
)
from repro.data.cards import vs_nmos_40nm, vs_pmos_40nm
from repro.devices.vs.model import VSDevice

VDD = 0.9


class TestRCAnalytic:
    def build_rc(self, r=1e3, c=1e-12, v1=1.0, t_step=1e-10):
        ckt = Circuit()
        ckt.add_vsource("a", GROUND, Step(0.0, v1, t_step, t_rise=1e-13), name="VS")
        ckt.add_resistor("a", "b", r)
        ckt.add_capacitor("b", GROUND, c)
        return ckt

    def test_rc_charging_curve(self):
        r, c = 1e3, 1e-12
        tau = r * c
        ckt = self.build_rc(r, c)
        res = transient(ckt, t_stop=1.2e-9, dt=tau / 200.0)
        vb = res["b"]
        t = res.times
        # Compare against 1 - exp(-(t - t0)/tau) after the step.
        mask = t > 2e-10
        expected = 1.0 - np.exp(-(t[mask] - 1e-10 - 0.5e-13) / tau)
        np.testing.assert_allclose(vb[mask], expected, atol=0.01)

    def test_trapezoidal_second_order_convergence(self):
        # With a resolved input edge, halving dt must shrink the error by
        # ~4x (2nd order).  Reference: a much finer run.
        r, c = 1e3, 1e-12

        def run(dt):
            ckt = Circuit()
            ckt.add_vsource("a", GROUND, Step(0.0, 1.0, 1e-10, t_rise=4e-11),
                            name="VS")
            ckt.add_resistor("a", "b", r)
            ckt.add_capacitor("b", GROUND, c)
            res = transient(ckt, t_stop=8e-10, dt=dt)
            return res

        ref = run(1e-13)
        errors = []
        for dt in (8e-12, 4e-12):
            res = run(dt)
            v_ref = np.interp(res.times, ref.times, ref["b"])
            errors.append(np.abs(res["b"] - v_ref).max())
        ratio = errors[0] / errors[1]
        assert ratio > 2.5  # clearly better than 1st order (ratio 2)

    def test_capacitor_blocks_dc(self):
        ckt = Circuit()
        ckt.add_vsource("a", GROUND, DC(1.0), name="VS")
        ckt.add_resistor("a", "b", 1e3)
        ckt.add_capacitor("b", GROUND, 1e-12)
        res = transient(ckt, t_stop=1e-9, dt=1e-11)
        # Started from DC: cap fully charged, nothing moves.
        np.testing.assert_allclose(res["b"], 1.0, atol=1e-6)

    def test_record_every(self):
        ckt = self.build_rc()
        res_full = transient(ckt, t_stop=4e-10, dt=1e-12)
        ckt2 = self.build_rc()
        res_thin = transient(ckt2, t_stop=4e-10, dt=1e-12, record_every=10)
        assert res_thin.times.size < res_full.times.size
        assert res_thin.times[-1] == pytest.approx(res_full.times[-1])

    def test_rejects_bad_arguments(self):
        ckt = self.build_rc()
        with pytest.raises(ValueError):
            transient(ckt, t_stop=1e-9, dt=-1e-12)
        with pytest.raises(ValueError):
            transient(ckt, t_stop=0.0, dt=1e-12)
        with pytest.raises(ValueError):
            transient(ckt, t_stop=1e-9, dt=1e-12, method="gear")


def build_inverter_tran(batch_vt0=None, cl=2e-15):
    card_n = vs_nmos_40nm(300.0, 40.0)
    if batch_vt0 is not None:
        card_n = card_n.replace(vt0=batch_vt0)
    ckt = Circuit()
    ckt.add_vsource("vdd", GROUND, DC(VDD), name="VDD")
    ckt.add_vsource(
        "in", GROUND,
        Pulse(0.0, VDD, delay=20e-12, t_rise=8e-12, t_fall=8e-12, width=120e-12),
        name="VIN",
    )
    ckt.add_mosfet(VSDevice(vs_pmos_40nm(600.0, 40.0)), d="out", g="in", s="vdd",
                   name="MP")
    ckt.add_mosfet(VSDevice(card_n), d="out", g="in", s=GROUND, name="MN")
    ckt.add_capacitor("out", GROUND, cl, name="CL")
    return ckt


class TestInverterTransient:
    def test_output_switches_and_recovers(self):
        ckt = build_inverter_tran()
        res = transient(ckt, t_stop=300e-12, dt=0.5e-12)
        out = res["out"]
        assert out[0] == pytest.approx(VDD, abs=0.01)
        mid_idx = np.searchsorted(res.times, 100e-12)
        assert out[mid_idx] < 0.05
        assert out[-1] == pytest.approx(VDD, abs=0.02)

    def test_rail_bounds_respected(self):
        ckt = build_inverter_tran()
        res = transient(ckt, t_stop=300e-12, dt=0.5e-12)
        out = res["out"]
        # Small over/undershoot through the gate-drain overlap cap is
        # physical; beyond ~10% of Vdd would indicate an integration bug.
        assert out.min() > -0.1 * VDD
        assert out.max() < 1.1 * VDD

    def test_batched_transient_consistent_with_scalar(self):
        vt0 = np.array([0.38, 0.46])
        ckt = build_inverter_tran(batch_vt0=vt0)
        res = transient(ckt, t_stop=200e-12, dt=1e-12)
        out_batched = res["out"]
        for k, v in enumerate(vt0):
            ckt_k = build_inverter_tran(batch_vt0=None)
            # Rebuild with scalar card.
            ckt_k = build_inverter_tran(batch_vt0=float(v))
            res_k = transient(ckt_k, t_stop=200e-12, dt=1e-12)
            np.testing.assert_allclose(out_batched[:, k], res_k["out"], atol=2e-4)

    def test_dt_refinement_converges(self):
        # Halving dt should barely move the waveform (2nd-order trap).
        ckt1 = build_inverter_tran()
        res1 = transient(ckt1, t_stop=150e-12, dt=1e-12)
        ckt2 = build_inverter_tran()
        res2 = transient(ckt2, t_stop=150e-12, dt=0.5e-12, record_every=2)
        n = min(res1.times.size, res2.times.size)
        np.testing.assert_allclose(res1["out"][:n], res2["out"][:n], atol=5e-3)
