"""Confidence ellipses for the Fig. 4 scatter overlays."""

import numpy as np
import pytest

from repro.stats.ellipse import (
    confidence_ellipse,
    expected_mahalanobis_fraction,
    mahalanobis_fraction,
)


@pytest.fixture()
def correlated_cloud(rng):
    n = 30000
    x = rng.standard_normal(n)
    y = 0.8 * x + 0.6 * rng.standard_normal(n)
    return 2.0 + 0.5 * x, -1.0 + 0.3 * y


class TestEllipseFit:
    def test_center_is_mean(self, correlated_cloud):
        x, y = correlated_cloud
        e = confidence_ellipse(x, y, 1.0)
        assert e.center[0] == pytest.approx(2.0, abs=0.02)
        assert e.center[1] == pytest.approx(-1.0, abs=0.02)

    def test_points_shape_and_closure(self, correlated_cloud):
        x, y = correlated_cloud
        pts = confidence_ellipse(x, y, 2.0).points(128)
        assert pts.shape == (128, 2)
        np.testing.assert_allclose(pts[0], pts[-1], atol=1e-9)

    def test_axes_scale_with_sigma(self, correlated_cloud):
        x, y = correlated_cloud
        a1 = confidence_ellipse(x, y, 1.0).axes_lengths[0]
        a3 = confidence_ellipse(x, y, 3.0).axes_lengths[0]
        assert a3 == pytest.approx(3.0 * a1, rel=1e-9)

    def test_orientation_tracks_correlation(self, correlated_cloud):
        x, y = correlated_cloud
        angle = confidence_ellipse(x, y, 1.0).orientation_deg
        # Positive correlation: major axis in the first/third quadrant.
        assert 0.0 < angle % 180.0 < 90.0

    def test_boundary_points_have_constant_mahalanobis(self, correlated_cloud):
        x, y = correlated_cloud
        e = confidence_ellipse(x, y, 2.0)
        pts = e.points(64)
        inv = np.linalg.inv(e.covariance)
        diff = pts - np.asarray(e.center)
        d2 = np.einsum("ni,ij,nj->n", diff, inv, diff)
        np.testing.assert_allclose(np.sqrt(d2), 2.0, rtol=1e-6)

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValueError):
            confidence_ellipse([1, 2], [3, 4], 1.0)
        x = rng.standard_normal(100)
        with pytest.raises(ValueError):
            confidence_ellipse(x, x, -1.0)


class TestMahalanobisCoverage:
    def test_gaussian_coverage_matches_theory(self, correlated_cloud):
        x, y = correlated_cloud
        for k in (1.0, 2.0, 3.0):
            observed = mahalanobis_fraction(x, y, k)
            expected = expected_mahalanobis_fraction(k)
            assert observed == pytest.approx(expected, abs=0.01)

    def test_expected_values(self):
        assert expected_mahalanobis_fraction(1.0) == pytest.approx(0.3935, abs=1e-3)
        assert expected_mahalanobis_fraction(2.0) == pytest.approx(0.8647, abs=1e-3)
        assert expected_mahalanobis_fraction(3.0) == pytest.approx(0.9889, abs=1e-3)
