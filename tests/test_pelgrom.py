"""Pelgrom scaling (Eq. 7-8) and the within/inter-die split (Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.pelgrom import (
    PARAMETER_ORDER,
    PelgromAlphas,
    pelgrom_sigmas,
    scaling_vector,
    within_die_variance_split,
)


@pytest.fixture()
def alphas() -> PelgromAlphas:
    return PelgromAlphas(2.3, 3.71, 3.71, 944.0, 0.29)


class TestScalingVector:
    def test_area_law_for_vt0(self):
        s1 = scaling_vector(600.0, 40.0)
        s2 = scaling_vector(2400.0, 40.0)  # 4x area
        assert s1[0] / s2[0] == pytest.approx(2.0)

    def test_length_width_factors(self):
        s = scaling_vector(600.0, 40.0)
        assert s[1] == pytest.approx(np.sqrt(40.0 / 600.0))
        assert s[2] == pytest.approx(np.sqrt(600.0 / 40.0))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaling_vector(0.0, 40.0)

    @given(w=st.floats(50.0, 5000.0), l=st.floats(20.0, 500.0))
    @settings(max_examples=50, deadline=None)
    def test_relative_ler_obeys_area_law(self, w, l):
        # sigma_L / L and sigma_W / W both scale as 1/sqrt(WL).
        s = scaling_vector(w, l)
        assert s[1] / l == pytest.approx(1.0 / np.sqrt(w * l))
        assert s[2] / w == pytest.approx(1.0 / np.sqrt(w * l))


class TestPelgromSigmas:
    def test_paper_medium_device(self, alphas):
        # alpha1 = 2.3 V nm at 600x40: sigma_VT0 ~ 14.8 mV.
        sig = pelgrom_sigmas(alphas, 600.0, 40.0)
        assert sig["vt0"] == pytest.approx(2.3 / np.sqrt(24000.0), rel=1e-9)
        assert sig["vt0"] == pytest.approx(0.01485, rel=1e-2)

    def test_all_parameters_present(self, alphas):
        sig = pelgrom_sigmas(alphas, 300.0, 40.0)
        assert set(sig) == set(PARAMETER_ORDER)

    def test_ler_symmetry(self, alphas):
        # With alpha2 = alpha3: sigma_L / sigma_W = L / W (paper Sec. III).
        sig = pelgrom_sigmas(alphas, 600.0, 40.0)
        assert sig["leff"] / sig["weff"] == pytest.approx(40.0 / 600.0)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            pelgrom_sigmas(PelgromAlphas(-1.0, 3.7, 3.7, 900.0, 0.3), 600.0, 40.0)

    def test_tied_ler_constructor(self):
        a = PelgromAlphas(2.3, 3.71, 9.99, 944.0, 0.29).with_tied_ler()
        assert a.alpha3_nm == a.alpha2_nm


class TestVarianceSplit:
    def test_pythagorean(self):
        assert within_die_variance_split(5.0, 3.0) == pytest.approx(4.0)

    def test_zero_within(self):
        assert within_die_variance_split(2.0, 0.0) == pytest.approx(2.0)

    def test_rejects_negative_variance(self):
        with pytest.raises(ValueError):
            within_die_variance_split(1.0, 2.0)

    @given(total=st.floats(0.1, 10.0), frac=st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, total, frac):
        within = frac * total
        inter = within_die_variance_split(total, within)
        assert inter**2 + within**2 == pytest.approx(total**2, rel=1e-9)
