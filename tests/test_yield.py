"""Rare-event yield engine: adaptive CE importance sampling as a spec.

Covers the PR-6 contracts end to end:

* statistical correctness — the 3-sigma estimate cross-validates against
  brute-force sharded Monte-Carlo within the combined confidence
  intervals at a >= 10x sims advantage;
* the fixed-shift special case — ``Yield(n_rounds=0, n_components=1)``
  is bit-identical to a sharded :class:`ImportanceSampling` run whose
  ``shard_size`` equals the yield ``block_size``;
* the block seed contract — envelopes bit-identical at 1/2/8 workers,
  across ``Execution.shard_size`` values (which do not apply to
  ``Yield``), under ``Sweep`` composition, through checkpoint/resume
  mid-round-wave, and through the tagged-JSON round-trip;
* the CE machinery itself — mixture algebra, elite levels, NaN policy,
  spec validation.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest
from scipy.stats import norm

from repro.api import (
    Execution,
    ImportanceSampling,
    Session,
    Sweep,
    Yield,
    YieldEstimate,
)
from repro.api.serialize import dumps, loads
from repro.runtime import RunObserver
from repro.stats.yield_engine import (
    GaussianMixtureShift,
    ce_update,
    initial_mixture,
)


@pytest.fixture()
def session(technology) -> Session:
    return Session(technology=technology, seed=20260101)


def _vt0_metric(params):
    """Module-level (picklable) device-tail metric."""
    return np.asarray(params.vt0)


def _threshold(technology, n_sigma: float = 3.0) -> float:
    model = technology["nmos"].statistical
    sigma = model.sigmas(600.0, 40.0)["vt0"]
    return float(np.asarray(model.nominal.vt0)) + n_sigma * sigma


def _yield_spec(technology, **overrides) -> Yield:
    base = dict(
        metric=_vt0_metric, threshold=_threshold(technology),
        shifts={"vt0": 3.0}, n_samples=2048, n_rounds=2, n_per_round=512,
        block_size=128, w_nm=600.0, l_nm=40.0, fail_below=False,
    )
    base.update(overrides)
    return Yield(**base)


# ----------------------------------------------------------------------
# Statistical correctness.
# ----------------------------------------------------------------------
class TestYieldCrossValidation:
    def test_three_sigma_matches_brute_force_within_ci(self, session,
                                                       technology):
        brute = session.run(ImportanceSampling(
            metric=_vt0_metric, threshold=_threshold(technology),
            shifts={"vt0": 0.0}, n_samples=120_000, w_nm=600.0, l_nm=40.0,
            fail_below=False, execution=Execution(shard_size=8192),
        )).payload
        adaptive = session.run(_yield_spec(
            technology, n_samples=4096, n_rounds=2, n_per_round=1024,
        )).payload

        # Within the combined 95 % intervals, and also compatible with
        # the analytic 3-sigma Gaussian tail.
        combined = 1.96 * (brute.std_error + adaptive.std_error)
        assert abs(adaptive.probability - brute.probability) <= combined
        assert adaptive.covers(norm.sf(3.0))
        # The rare-event budget: >= 10x fewer sims at a *tighter* error.
        assert adaptive.total_samples * 10 <= brute.n_samples
        assert adaptive.relative_error < brute.relative_error

    def test_adaptation_steers_into_the_tail(self, session, technology):
        # Seeded far short of the failure region (0.5 sigma), the CE
        # rounds must walk the proposal out to ~3 sigma.
        result = session.run(_yield_spec(
            technology, shifts={"vt0": 0.5}, n_rounds=4, n_per_round=1024,
        ))
        meta = result.meta["yield"]
        final_shift = meta["final_mixture"]["shifts"][0][0]
        assert final_shift > 2.0
        assert result.payload.n_failures > 0
        levels = [step["level"] for step in meta["trajectory"]]
        assert levels == sorted(levels)  # monotone toward the threshold

    def test_fixed_shift_special_case_is_bit_identical(self, session,
                                                       technology):
        fixed = session.run(ImportanceSampling(
            metric=_vt0_metric, threshold=_threshold(technology),
            shifts={"vt0": 3.0}, n_samples=2048, w_nm=600.0, l_nm=40.0,
            fail_below=False, execution=Execution(shard_size=128),
        )).payload
        zero_rounds = session.run(_yield_spec(
            technology, n_rounds=0, block_size=128,
        )).payload

        assert zero_rounds.probability == fixed.probability
        assert zero_rounds.std_error == fixed.std_error
        assert zero_rounds.effective_samples == fixed.effective_samples
        assert zero_rounds.n_failures == fixed.n_failures
        assert zero_rounds.rounds_run == 0
        assert zero_rounds.total_samples == fixed.n_samples


# ----------------------------------------------------------------------
# Determinism matrix: workers x shard sizes x sweep x JSON.
# ----------------------------------------------------------------------
class TestYieldDeterminism:
    WORKER_COUNTS = (1, 2, 8)

    def test_bit_identical_at_every_worker_count(self, session, technology):
        results = {
            w: session.run(_yield_spec(
                technology, execution=Execution(workers=w),
            ))
            for w in self.WORKER_COUNTS
        }
        reference = results[1]
        assert results[8].runtime.executor == "process-pool"
        for workers in self.WORKER_COUNTS[1:]:
            assert results[workers].payload == reference.payload
            assert results[workers].meta["yield"] == reference.meta["yield"]

    def test_shard_size_does_not_apply_to_yield(self, session, technology):
        # The block partition is spec geometry; Execution.shard_size
        # must not perturb the envelope.
        results = [
            session.run(_yield_spec(
                technology,
                execution=Execution(shard_size=size, workers=workers),
            ))
            for size, workers in ((64, 1), (1000, 1), (7, 2))
        ]
        reference = session.run(_yield_spec(technology))
        for result in results:
            assert result.payload == reference.payload
            assert result.meta["yield"] == reference.meta["yield"]

    def test_sweep_composition_is_worker_invariant(self, session,
                                                   technology):
        threshold = _threshold(technology)
        spread = _threshold(technology, 2.5)
        sweep_of = lambda w: Sweep(
            _yield_spec(technology, n_samples=1024, n_rounds=1,
                        n_per_round=256),
            over={"threshold": (threshold, spread)},
            execution=Execution(workers=w),
        )
        serial = session.run(sweep_of(1))
        parallel = session.run(sweep_of(2))
        assert len(serial.points) == 2
        probabilities = [p.payload.probability for p in serial.points]
        assert probabilities[0] != probabilities[1]
        for a, b in zip(serial.points, parallel.points):
            assert a.payload == b.payload
            assert a.meta["yield"] == b.meta["yield"]

    def test_tagged_json_round_trip(self, session, technology):
        result = session.run(_yield_spec(
            technology, n_samples=512, n_rounds=1, n_per_round=256,
        ))
        envelope = {
            "payload": result.payload,
            "meta": result.meta,
            "spec": result.spec,
        }
        restored = loads(dumps(envelope))
        assert restored["payload"] == result.payload
        assert restored["meta"]["yield"] == result.meta["yield"]
        assert restored["spec"] == result.spec


# ----------------------------------------------------------------------
# Checkpoint/resume at round and wave boundaries.
# ----------------------------------------------------------------------
class _CancelAfterWaves(RunObserver):
    """Cancels the run after *waves* progress callbacks — mid-round."""

    def __init__(self, waves: int):
        self.waves = waves
        self.seen = 0

    def on_progress(self, done, total, accumulator=None, unit="shards"):
        if done > 0:
            self.seen += 1

    def should_cancel(self) -> bool:
        return self.seen >= self.waves


class TestYieldCheckpoint:
    def test_resume_mid_adaptation_round_is_bit_identical(self, session,
                                                          technology,
                                                          tmp_path):
        prefix = str(tmp_path / "yield.ckpt")
        spec_of = lambda execution: _yield_spec(
            technology, n_samples=1024, n_per_round=512,
            execution=execution,
        )
        # Phase 1: cancel two waves into the first adaptation round.
        checkpointed = Execution(wave_size=1, checkpoint=prefix)
        partial = session._execute(
            spec_of(checkpointed), observer=_CancelAfterWaves(2),
        )
        assert partial.runtime.stop_reason == "cancelled"
        assert partial.payload.n_samples == 0
        assert glob.glob(prefix + "*")
        # Phase 2: resume from the interrupted round; the envelope must
        # equal the uninterrupted run's exactly.
        resumed = session.run(spec_of(checkpointed))
        uninterrupted = session.run(spec_of(Execution(wave_size=1)))
        assert resumed.payload == uninterrupted.payload
        assert resumed.meta["yield"] == uninterrupted.meta["yield"]

    def test_resume_mid_estimation_phase_is_bit_identical(self, session,
                                                          technology,
                                                          tmp_path):
        prefix = str(tmp_path / "yield-est.ckpt")
        spec_of = lambda execution: _yield_spec(
            technology, n_samples=1024, n_rounds=1, n_per_round=256,
            execution=execution,
        )
        partial = session.run(spec_of(Execution(
            wave_size=1, max_samples=512, checkpoint=prefix,
        )))
        assert partial.runtime.stopped_early
        resumed = session.run(spec_of(Execution(
            wave_size=1, checkpoint=prefix,
        )))
        assert resumed.runtime.resumed_shards > 0
        uninterrupted = session.run(spec_of(Execution(wave_size=1)))
        assert resumed.payload == uninterrupted.payload
        assert resumed.meta["yield"] == uninterrupted.meta["yield"]

    def test_adaptive_stop_rule_applies_to_estimation(self, session,
                                                      technology):
        result = session.run(_yield_spec(
            technology, n_samples=65536,
            execution=Execution(target_rel_err=0.2, wave_size=2),
        ))
        assert result.runtime.stopped_early
        assert "relative error" in result.runtime.stop_reason
        assert result.payload.relative_error <= 0.2
        assert result.payload.n_samples < 65536


# ----------------------------------------------------------------------
# The CE machinery.
# ----------------------------------------------------------------------
class TestMixtureAlgebra:
    def test_initial_mixture_single_component_uses_seed_verbatim(self):
        mixture = initial_mixture({"vt0": -2.5, "leff": 1.0}, 1)
        assert mixture.names == ("leff", "vt0")
        assert mixture.shifts == ((1.0, -2.5),)
        assert mixture.weights == (1.0,)

    def test_initial_mixture_fans_components_symmetrically_about_one(self):
        mixture = initial_mixture({"vt0": 3.0}, 3)
        scales = [row[0] / 3.0 for row in mixture.shifts]
        assert scales == pytest.approx([0.5, 1.0, 1.5])
        assert sum(mixture.weights) == pytest.approx(1.0)

    def test_mixture_weights_must_normalize(self):
        with pytest.raises(ValueError, match="sum to 1"):
            GaussianMixtureShift(names=("vt0",), weights=(0.5, 0.4),
                                 shifts=((1.0,), (2.0,)))

    def test_k1_draw_offsets_consumes_no_randomness(self):
        mixture = initial_mixture({"vt0": 2.0}, 1)
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        offsets = mixture.draw_offsets(16, rng, {"vt0": 0.01})
        assert rng.bit_generator.state == before
        np.testing.assert_array_equal(offsets["vt0"], np.full(16, 0.02))

    def test_mixture_weights_match_fixed_shift_formula(self):
        from repro.stats.importance import importance_weights

        mixture = initial_mixture({"vt0": 2.0, "mu": -1.0}, 1)
        rng = np.random.default_rng(11)
        sigmas = {"vt0": 0.02, "mu": 12.0}
        deviations = {name: rng.standard_normal(64) * sigma
                      for name, sigma in sigmas.items()}
        np.testing.assert_array_equal(
            mixture.importance_weights(deviations, sigmas),
            importance_weights(deviations, {"vt0": 2.0, "mu": -1.0},
                               sigmas),
        )

    def test_multi_component_weights_reduce_to_k1_when_degenerate(self):
        # K identical components ARE the single shift; the logsumexp
        # path must agree with the analytic fixed-shift ratio.
        k1 = initial_mixture({"vt0": 2.0}, 1)
        k3 = GaussianMixtureShift(
            names=("vt0",), weights=(0.2, 0.3, 0.5),
            shifts=((2.0,), (2.0,), (2.0,)),
        )
        rng = np.random.default_rng(5)
        sigmas = {"vt0": 0.02}
        deviations = {"vt0": rng.standard_normal(128) * 0.02}
        np.testing.assert_allclose(
            k3.importance_weights(deviations, sigmas),
            k1.importance_weights(deviations, sigmas),
            rtol=1e-12,
        )


class TestCEUpdate:
    def _x(self, values):
        return np.asarray(values, dtype=float)[:, None]

    def test_level_clips_at_threshold(self):
        mixture = initial_mixture({"vt0": 1.0}, 1)
        values = np.linspace(0.0, 1.0, 100)
        weights = np.ones(100)
        _, level, n_elite = ce_update(
            mixture, values, weights, self._x(values), threshold=0.5,
            elite_fraction=0.1, smoothing=1.0, fail_below=True,
        )
        # The 0.1-quantile (0.1) overshoots the true threshold; the
        # multilevel schedule clips the level back to it.
        assert level == 0.5
        assert n_elite == np.count_nonzero(values <= 0.5)

    def test_elite_centroid_moves_the_mean(self):
        mixture = initial_mixture({"vt0": 0.0}, 1)
        values = np.asarray([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        x_sigma = self._x([5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.2, 0.1])
        updated, _, n_elite = ce_update(
            mixture, values, np.ones(8), x_sigma, threshold=-1.0,
            elite_fraction=0.25, smoothing=1.0, fail_below=True,
        )
        assert n_elite == 2
        assert updated.shifts[0][0] == pytest.approx(4.5)  # mean(5, 4)

    def test_nan_values_do_not_poison_the_level(self):
        mixture = initial_mixture({"vt0": 1.0}, 1)
        values = np.asarray([np.nan, np.nan, 1.0, 2.0, 3.0, 4.0])
        _, level, _ = ce_update(
            mixture, values, np.ones(6), self._x(np.zeros(6)),
            threshold=0.0, elite_fraction=0.5, smoothing=1.0,
            fail_below=True,
        )
        assert np.isfinite(level)

    def test_all_nan_returns_unchanged_mixture(self):
        mixture = initial_mixture({"vt0": 1.0}, 1)
        updated, level, n_elite = ce_update(
            mixture, np.full(4, np.nan), np.ones(4),
            self._x(np.zeros(4)), threshold=0.0, elite_fraction=0.5,
            smoothing=1.0, fail_below=True,
        )
        assert updated == mixture
        assert np.isnan(level)
        assert n_elite == 0

    def test_infinite_failures_are_elites(self):
        # A metric mapping non-convergence to the failing extreme (-inf
        # here) must pull the proposal toward those samples, not drop
        # them the way NaN is dropped.
        mixture = initial_mixture({"vt0": 0.0}, 1)
        values = np.asarray([-np.inf, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        x_sigma = self._x([3.0, 2.0, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05])
        updated, level, n_elite = ce_update(
            mixture, values, np.ones(8), x_sigma, threshold=0.0,
            elite_fraction=0.25, smoothing=1.0, fail_below=True,
        )
        assert level == pytest.approx(0.875)  # the -inf sits in the pool
        assert n_elite == 2
        assert updated.shifts[0][0] == pytest.approx(2.5)  # mean(3, 2)


# ----------------------------------------------------------------------
# Spec validation + envelope semantics.
# ----------------------------------------------------------------------
class TestYieldSpec:
    def test_unknown_parameter_rejected(self, technology):
        with pytest.raises(ValueError, match="unknown statistical"):
            _yield_spec(technology, shifts={"beta": 1.0})

    def test_bounds_validated(self, technology):
        with pytest.raises(ValueError, match="elite_fraction"):
            _yield_spec(technology, elite_fraction=1.5)
        with pytest.raises(ValueError, match="smoothing"):
            _yield_spec(technology, smoothing=0.0)
        with pytest.raises(ValueError, match="n_rounds"):
            _yield_spec(technology, n_rounds=-1)
        with pytest.raises(ValueError, match="block_size"):
            _yield_spec(technology, block_size=0)
        with pytest.raises(ValueError, match="metric"):
            _yield_spec(technology, metric=None)

    def test_estimate_relative_error_inf_below_two_failures(self):
        estimate = YieldEstimate(
            probability=1e-4, std_error=1e-4, n_samples=100,
            effective_samples=50.0, n_failures=1, ci_low=0.0,
            ci_high=3e-4, rounds_run=1, total_samples=200,
        )
        assert estimate.relative_error == np.inf

    def test_covers(self):
        estimate = YieldEstimate(
            probability=1e-3, std_error=1e-4, n_samples=1000,
            effective_samples=500.0, n_failures=10, ci_low=8e-4,
            ci_high=1.2e-3, rounds_run=2, total_samples=2000,
        )
        assert estimate.covers(1e-3)
        assert not estimate.covers(2e-3)
