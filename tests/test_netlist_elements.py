"""Netlist construction and element stamp mechanics."""

import numpy as np
import pytest

from repro.circuit.elements import Capacitor, MOSFET, Resistor, VoltageSource
from repro.circuit.mna import NewtonOptions, System
from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.waveforms import DC
from repro.data.cards import vs_nmos_40nm
from repro.devices.vs.model import VSDevice


class TestCircuitNodes:
    def test_ground_is_minus_one(self):
        ckt = Circuit()
        assert ckt.node(GROUND) == -1

    def test_nodes_numbered_in_order(self):
        ckt = Circuit()
        assert ckt.node("a") == 0
        assert ckt.node("b") == 1
        assert ckt.node("a") == 0  # idempotent
        assert ckt.node_names == ["a", "b"]

    def test_index_of_unknown_node_raises(self):
        ckt = Circuit()
        with pytest.raises(KeyError):
            ckt.index_of("nope")

    def test_element_lookup_by_name(self):
        ckt = Circuit()
        r = ckt.add_resistor("a", "b", 10.0, name="R1")
        assert ckt["R1"] is r

    def test_assign_branches_counts_sources(self):
        ckt = Circuit()
        ckt.add_vsource("a", GROUND, DC(1.0), name="V1")
        ckt.add_vsource("b", GROUND, DC(2.0), name="V2")
        ckt.add_resistor("a", "b", 1.0)
        n = ckt.assign_branches()
        assert n == 2 + 2  # two nodes + two branch currents
        assert ckt["V1"].branch_index == 2
        assert ckt["V2"].branch_index == 3

    def test_vsources_and_mosfets_listing(self):
        ckt = Circuit()
        ckt.add_vsource("a", GROUND, DC(1.0), name="V1")
        ckt.add_mosfet(VSDevice(vs_nmos_40nm()), d="a", g="a", s=GROUND,
                       name="M1")
        assert len(ckt.vsources()) == 1
        assert len(ckt.mosfets()) == 1

    def test_batch_shape_from_device(self):
        ckt = Circuit()
        card = vs_nmos_40nm().replace(vt0=np.full(9, 0.42))
        ckt.add_mosfet(VSDevice(card), d="a", g="b", s=GROUND)
        assert ckt.batch_shape == (9,)

    def test_numeric_waveform_coerced_to_dc(self):
        ckt = Circuit()
        src = ckt.add_vsource("a", GROUND, 1.5, name="V1")
        assert isinstance(src.waveform, DC)
        assert float(src.waveform.value(0.0)) == 1.5


class TestSystemAccumulator:
    def test_ground_contributions_discarded(self):
        sys = System((), 2)
        sys.add_f(-1, 5.0)
        sys.add_j(-1, 0, 1.0)
        sys.add_j(0, -1, 1.0)
        assert np.all(sys.residual == 0.0)
        assert np.all(sys.jacobian == 0.0)

    def test_accumulation(self):
        sys = System((), 2)
        sys.add_f(1, 2.0)
        sys.add_f(1, 3.0)
        assert sys.residual[1] == 5.0

    def test_batched_shape(self):
        sys = System((7,), 3)
        assert sys.jacobian.shape == (7, 3, 3)
        sys.add_f(0, np.arange(7.0))
        assert sys.residual[3, 0] == 3.0


class TestElementStamps:
    def test_resistor_stamp_symmetry(self):
        sys = System((), 2)
        r = Resistor(0, 1, 100.0)
        v = np.array([1.0, 0.0])
        r.stamp_static(sys, v, 0.0)
        g = 1.0 / 100.0
        assert sys.jacobian[0, 0] == pytest.approx(g)
        assert sys.jacobian[0, 1] == pytest.approx(-g)
        assert sys.residual[0] == pytest.approx(g * 1.0)
        assert sys.residual[1] == pytest.approx(-g * 1.0)

    def test_capacitor_charge_vector(self):
        c = Capacitor(0, 1, 2e-15)
        v = np.array([0.5, 0.1])
        q = c.charge_vector(v)
        assert q[0] == pytest.approx(2e-15 * 0.4)
        assert q[1] == pytest.approx(-2e-15 * 0.4)

    def test_capacitor_jacobian(self):
        c = Capacitor(0, 1, 3e-15)
        v = np.zeros(2)
        jac = c.charge_jacobian(v)
        assert jac[0, 0] == pytest.approx(3e-15)
        assert jac[0, 1] == pytest.approx(-3e-15)

    def test_capacitor_rejects_negative(self):
        with pytest.raises(ValueError):
            Capacitor(0, 1, -1e-15)

    def test_vsource_unassigned_branch_raises(self):
        src = VoltageSource(0, -1, DC(1.0))
        sys = System((), 2)
        with pytest.raises(RuntimeError):
            src.stamp_static(sys, np.zeros(2), 0.0)

    def test_mosfet_charge_conservation_in_stamps(self):
        device = VSDevice(vs_nmos_40nm())
        m = MOSFET(0, 1, -1, device)  # d=node0, g=node1, s=gnd
        v = np.array([0.6, 0.9])
        q = m.charge_vector(v)
        assert float(q.sum()) == pytest.approx(0.0, abs=1e-20)

    def test_mosfet_kcl_stamp_rows_balance(self):
        device = VSDevice(vs_nmos_40nm())
        m = MOSFET(0, 1, 2, device)
        sys = System((), 3)
        v = np.array([0.9, 0.9, 0.0])
        m.stamp_nonlinear(sys, v)
        # Drain and source rows carry equal and opposite current.
        assert sys.residual[0] == pytest.approx(-sys.residual[2])
        assert sys.residual[1] == 0.0  # no gate current in DC


class TestNewtonOptions:
    def test_defaults(self):
        opts = NewtonOptions()
        assert opts.max_iterations == 80
        assert opts.gmin > 0.0
