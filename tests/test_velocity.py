"""Eq. (5)-(6): ballistic efficiency and vxo sensitivity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices.vs.velocity import (
    ballistic_efficiency,
    mobility_sensitivity_coefficient,
    vxo_relative_shift,
)


class TestBallisticEfficiency:
    def test_formula(self):
        # B = lambda / (lambda + 2 l).
        assert ballistic_efficiency(10.0, 5.0) == pytest.approx(0.5)

    def test_ballistic_limit(self):
        assert ballistic_efficiency(1e6, 5.0) == pytest.approx(1.0, abs=1e-4)

    def test_diffusive_limit(self):
        assert ballistic_efficiency(1e-3, 5.0) == pytest.approx(0.0, abs=1e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ballistic_efficiency(-1.0, 5.0)
        with pytest.raises(ValueError):
            ballistic_efficiency(10.0, 0.0)

    @given(lam=st.floats(0.1, 100.0), lc=st.floats(0.1, 100.0))
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, lam, lc):
        b = float(ballistic_efficiency(lam, lc))
        assert 0.0 < b < 1.0


class TestMobilityCoefficient:
    def test_paper_values(self):
        # B = 0.5, alpha = 0.5, gamma = 0.45: k = 0.5 + 0.5*0.95 = 0.975.
        k = mobility_sensitivity_coefficient(0.5, 0.5, 0.45)
        assert k == pytest.approx(0.975)

    def test_ballistic_limit_is_alpha(self):
        assert mobility_sensitivity_coefficient(1.0, 0.5, 0.45) == pytest.approx(0.5)

    def test_diffusive_limit(self):
        # B = 0: k = alpha + (1 - alpha + gamma) = 1 + gamma.
        assert mobility_sensitivity_coefficient(0.0, 0.5, 0.45) == pytest.approx(1.45)

    def test_rejects_out_of_range_b(self):
        with pytest.raises(ValueError):
            mobility_sensitivity_coefficient(1.5)


class TestVxoShift:
    def test_pure_mobility_shift(self):
        shift = vxo_relative_shift(0.02, 0.0, 10.0, 5.0)
        assert shift == pytest.approx(0.975 * 0.02)

    def test_pure_dibl_shift(self):
        # d vxo / vxo = 2 * d delta with the paper's coefficient.
        shift = vxo_relative_shift(0.0, 0.01, 10.0, 5.0, dvxo_ddelta=2.0)
        assert shift == pytest.approx(0.02)

    def test_linearity(self):
        s1 = vxo_relative_shift(0.01, 0.002, 10.0, 5.0)
        s2 = vxo_relative_shift(0.02, 0.004, 10.0, 5.0)
        assert s2 == pytest.approx(2.0 * float(s1))

    def test_vectorized(self):
        dmu = np.array([0.0, 0.01, -0.01])
        shift = vxo_relative_shift(dmu, 0.0, 10.0, 5.0)
        assert shift.shape == (3,)
        assert shift[0] == pytest.approx(0.0)
        assert shift[2] == pytest.approx(-float(shift[1]))
