"""The public `Session`/`AnalysisSpec` API.

Covers: spec validation, the SeedSequence seed tree (including its
bit-compatibility with the legacy per-experiment seeding), session seed
reproducibility, backend selection/override (compiled vs generic MNA),
the session plan cache, the `Result` envelope's JSON round trip, the
experiment registry, and batched-vs-scalar equivalence of the AC and
DC-sweep analyses driven through `Session.run` (the two analyses
PR 1's equivalence suite left out).
"""

import json

import numpy as np
import pytest

from repro.api import (
    AC,
    DCOp,
    DCSweep,
    ImportanceSampling,
    MonteCarlo,
    PlanCache,
    SeedTree,
    Session,
    Transient,
    load_all,
    names,
)
from repro.cells.factory import RecordingFactory, ScalarReplayFactory
from repro.cells.inverter import InverterSpec, build_inverter_fo
from repro.circuit import Resistor, UnsupportedCircuitError

RTOL = 1e-9


@pytest.fixture()
def session(technology) -> Session:
    return Session(technology=technology, seed=20250101)


class TestSeedTree:
    def test_matches_legacy_default_rng_streams(self):
        """SeedTree(root).rng(k) must replay default_rng(root + k) exactly
        — the property that keeps the golden figures bit-identical."""
        tree = SeedTree(424242)
        for offset in (0, 1, 31, 400):
            ours = tree.rng(offset).random(8)
            legacy = np.random.default_rng(424242 + offset).random(8)
            np.testing.assert_array_equal(ours, legacy)

    def test_fresh_generator_per_call(self):
        tree = SeedTree(7)
        np.testing.assert_array_equal(tree.rng(3).random(4), tree.rng(3).random(4))

    def test_spawn_children_are_distinct_and_advance(self):
        tree = SeedTree(7)
        a, b = tree.spawn(2)
        (c,) = tree.spawn(1)
        draws = {
            np.random.Generator(np.random.PCG64(s)).random() for s in (a, b, c)
        }
        assert len(draws) == 3


class TestSpecValidation:
    def test_transient_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Transient(t_stop=1e-9, dt=0.0)
        with pytest.raises(ValueError):
            Transient(t_stop=0.0, dt=1e-12, t_start=1e-9)
        with pytest.raises(ValueError):
            Transient(t_stop=1e-9, dt=1e-12, method="rk4")
        with pytest.raises(ValueError):
            Transient(t_stop=1e-9, dt=1e-12, record_every=0)

    def test_ac_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AC(frequencies=(), ac_sources=("VIN",))
        with pytest.raises(ValueError):
            AC(frequencies=(1e6,), ac_sources=())
        with pytest.raises(ValueError):
            AC(frequencies=(-1.0,), ac_sources=("VIN",))

    def test_dcsweep_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DCSweep(source="", values=(0.0,))
        with pytest.raises(ValueError):
            DCSweep(source="VF", values=())

    def test_montecarlo_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MonteCarlo(n_samples=0)
        with pytest.raises(ValueError):
            MonteCarlo(n_samples=10, model="psp")
        with pytest.raises(ValueError):
            MonteCarlo(n_samples=10, polarity="cmos")

    def test_importance_sampling_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ImportanceSampling(metric=None, threshold=0.0, shifts={"vt0": 1.0})
        with pytest.raises(ValueError):
            ImportanceSampling(metric=lambda p: p.vt0, threshold=0.0, shifts={})

    def test_required_fields_are_required(self):
        with pytest.raises(TypeError):
            Transient()
        with pytest.raises(TypeError):
            AC(frequencies=(1e6,))
        with pytest.raises(TypeError):
            DCSweep(source="VIN")

    def test_backend_field_validated(self):
        with pytest.raises(ValueError):
            DCOp(backend="fortran")
        with pytest.raises(ValueError):
            Session(backend="fortran")

    def test_node_hints_frozen_but_round_trip(self):
        spec = DCOp(node_hints={"out": 0.9, "vdd": 0.9})
        assert isinstance(spec.node_hints, tuple)
        assert spec.hints_dict() == {"out": 0.9, "vdd": 0.9}
        with pytest.raises(AttributeError):
            spec.t = 1.0


class TestSessionSeeding:
    def test_montecarlo_reproducible_at_fixed_seed(self, technology):
        spec = MonteCarlo(n_samples=250, w_nm=600.0, l_nm=40.0, seed_offset=3)
        a = Session(technology=technology, seed=11).run(spec)
        b = Session(technology=technology, seed=11).run(spec)
        np.testing.assert_array_equal(
            a.payload.samples["idsat"], b.payload.samples["idsat"]
        )
        assert a.seed == b.seed == 11 + 3

    def test_seed_override_changes_streams(self, technology):
        spec = MonteCarlo(n_samples=250, seed_offset=3)
        a = Session(technology=technology, seed=11).run(spec)
        b = Session(technology=technology, seed=12).run(spec)
        assert not np.array_equal(
            a.payload.samples["idsat"], b.payload.samples["idsat"]
        )

    def test_rerun_is_stateless(self, session):
        spec = MonteCarlo(n_samples=100, seed_offset=5)
        first = session.run(spec).payload.samples["idsat"]
        second = session.run(spec).payload.samples["idsat"]
        np.testing.assert_array_equal(first, second)


class TestResultEnvelope:
    def test_montecarlo_to_json_round_trip(self, session):
        result = session.run(MonteCarlo(n_samples=50, seed_offset=2))
        decoded = json.loads(result.to_json())
        assert decoded["backend"] == "device"
        assert decoded["n_samples"] == 50
        assert decoded["seed"] == session.seed + 2
        assert decoded["spec"]["kind"] == "MonteCarlo"
        np.testing.assert_allclose(
            decoded["payload"]["samples"]["idsat"],
            result.payload.samples["idsat"],
        )

    def test_payload_can_be_omitted(self, session):
        result = session.run(MonteCarlo(n_samples=10))
        decoded = json.loads(result.to_json(include_payload=False))
        assert "payload" not in decoded
        assert decoded["wall_time_s"] >= 0.0

    def test_complex_payloads_serialize(self, session):
        circuit, hints = build_inverter_fo(
            session.mc_factory(2, seed_offset=9), InverterSpec(), 0.9
        )
        result = session.run(
            AC(frequencies=(1e6, 1e9), ac_sources=("VIN",), node_hints=hints),
            circuit,
        )
        decoded = json.loads(result.to_json())
        phasors = decoded["payload"]["phasors"]
        assert set(phasors) == {"real", "imag"}

    def test_importance_sampling_runs_through_session(self, session):
        nominal_vt0 = float(session.technology.nmos.vs_nominal.vt0)
        result = session.run(
            ImportanceSampling(
                metric=lambda card: np.asarray(card.vt0),
                threshold=nominal_vt0,
                shifts={"vt0": -2.0},
                n_samples=4000,
                w_nm=600.0,
                l_nm=40.0,
            )
        )
        # True probability is exactly 0.5 (threshold at the mean).
        assert 0.35 < result.payload.probability < 0.65
        assert result.backend == "device"


class TestBackendSelection:
    def _circuit(self, session, n_samples=3, seed_offset=21):
        factory = session.mc_factory(n_samples, seed_offset=seed_offset)
        return build_inverter_fo(factory, InverterSpec(), 0.9)

    def test_session_backend_flows_to_circuits(self, technology):
        generic = Session(technology=technology, backend="generic")
        circuit, hints = self._circuit(generic)
        result = generic.run(DCOp(node_hints=hints), circuit)
        assert result.backend == "generic"
        assert circuit.compiled() is None

    def test_per_spec_override_beats_session(self, technology):
        generic = Session(technology=technology, backend="generic")
        circuit, hints = self._circuit(generic)
        result = generic.run(DCOp(node_hints=hints, backend="compiled"), circuit)
        assert result.backend == "compiled"

    def test_backends_agree_numerically(self, technology):
        solutions = {}
        for backend in ("compiled", "generic"):
            s = Session(technology=technology, backend=backend, seed=77)
            circuit, hints = self._circuit(s)
            solutions[backend] = s.run(DCOp(node_hints=hints), circuit).payload
        np.testing.assert_allclose(
            solutions["compiled"], solutions["generic"], rtol=1e-7, atol=1e-9
        )

    def test_forced_compiled_on_unsupported_netlist_raises(self, session):
        class OddballResistor(Resistor):
            """Subclass the compiler does not plan (exact-type matching)."""

        circuit, hints = self._circuit(session)
        circuit.add(OddballResistor(circuit.node("out"), -1, 1e9, "RX"))
        with pytest.raises(UnsupportedCircuitError):
            session.run(DCOp(node_hints=hints, backend="compiled"), circuit)
        # The per-spec override must not leak onto the circuit: direct
        # (non-session) solves keep working on the auto fallback.
        assert circuit.backend == "auto"
        from repro.circuit import dc_operating_point

        dc_operating_point(circuit)
        # auto falls back to the generic path through the session too.
        result = session.run(DCOp(node_hints=hints), circuit)
        assert result.backend == "generic"


class TestPlanCache:
    def test_factory_circuits_share_the_session_cache(self, session):
        circuit, _ = TestBackendSelection()._circuit(session)
        assert circuit.plan_cache is session.plan_cache

    def test_repeat_solves_hit_the_cache(self, session):
        circuit, hints = TestBackendSelection()._circuit(session)
        spec = DCOp(node_hints=hints)
        session.run(spec, circuit)
        misses = session.plan_cache.misses
        session.run(spec, circuit)
        assert session.plan_cache.misses == misses
        assert session.plan_cache.hits >= 1

    def test_cache_is_bounded(self, session):
        cache = PlanCache(maxsize=2)
        small = Session(technology=session.technology, plan_cache=cache)
        for k in range(4):
            circuit, hints = TestBackendSelection()._circuit(
                small, seed_offset=30 + k
            )
            small.run(DCOp(node_hints=hints), circuit)
        assert len(cache) <= 2

    def test_entries_die_with_their_circuit(self, session):
        """A collected circuit must not pin its plan (and the batched
        device-parameter arrays inside it) in the session cache."""
        import gc

        circuit, hints = TestBackendSelection()._circuit(session)
        session.run(DCOp(node_hints=hints), circuit)
        size_before = len(session.plan_cache)
        del circuit, hints
        gc.collect()
        assert len(session.plan_cache) == size_before - 1

    def test_equip_adopts_custom_factories(self, technology):
        from repro.cells.factory import NominalDeviceFactory

        class CustomFactory(NominalDeviceFactory):
            """Stand-in for corner/replay factories built by callers."""

        generic = Session(technology=technology, backend="generic")
        factory = generic.equip(CustomFactory(technology, "vs"))
        circuit, hints = build_inverter_fo(factory, InverterSpec(), 0.9)
        result = generic.run(DCOp(node_hints=hints), circuit)
        assert circuit.plan_cache is generic.plan_cache
        assert result.backend == "generic"


class TestACAndDCSweepEquivalence:
    """Batched == scalar for the two analyses PR 1's suite left out,
    driven end to end through `Session.run`."""

    N_SAMPLES = 4

    def _recorded(self, technology, seed_offset):
        session = Session(technology=technology, seed=515)
        recorder = RecordingFactory(
            session.mc_factory(self.N_SAMPLES, seed_offset=seed_offset)
        )
        return session, recorder

    def test_ac_batched_matches_scalar(self, technology):
        spec = InverterSpec()
        ac = AC(
            frequencies=tuple(np.logspace(6, 10, 5)),
            ac_sources=("VIN",),
        )
        session, recorder = self._recorded(technology, seed_offset=51)

        circuit, hints = build_inverter_fo(recorder, spec, technology.vdd)
        batched = session.run(
            AC(frequencies=ac.frequencies, ac_sources=ac.ac_sources,
               node_hints=hints),
            circuit,
        ).payload["out"]
        assert batched.shape == (5, self.N_SAMPLES)

        for k in range(self.N_SAMPLES):
            replay = ScalarReplayFactory(recorder.devices, k)
            c_k, h_k = build_inverter_fo(replay, spec, technology.vdd)
            scalar = session.run(
                AC(frequencies=ac.frequencies, ac_sources=ac.ac_sources,
                   node_hints=h_k),
                c_k,
            ).payload["out"]
            np.testing.assert_allclose(batched[:, k], scalar, rtol=RTOL)

    def test_dcsweep_batched_matches_scalar(self, technology):
        spec = InverterSpec()
        values = tuple(np.linspace(0.0, technology.vdd, 7))
        session, recorder = self._recorded(technology, seed_offset=52)

        circuit, hints = build_inverter_fo(recorder, spec, technology.vdd)
        batched = session.run(
            DCSweep(source="VIN", values=values, node_hints=hints), circuit
        ).payload["out"]
        assert batched.shape == (7, self.N_SAMPLES)

        for k in range(self.N_SAMPLES):
            replay = ScalarReplayFactory(recorder.devices, k)
            c_k, h_k = build_inverter_fo(replay, spec, technology.vdd)
            scalar = session.run(
                DCSweep(source="VIN", values=values, node_hints=h_k), c_k
            ).payload["out"]
            np.testing.assert_allclose(batched[:, k], scalar, rtol=RTOL)

    def test_dcsweep_generic_backend_agrees(self, technology):
        """The same sweep through the forced-generic backend."""
        spec = InverterSpec()
        values = tuple(np.linspace(0.0, technology.vdd, 5))
        results = {}
        for backend in ("compiled", "generic"):
            session = Session(technology=technology, seed=515, backend=backend)
            factory = session.mc_factory(3, seed_offset=53)
            circuit, hints = build_inverter_fo(factory, spec, technology.vdd)
            results[backend] = session.run(
                DCSweep(source="VIN", values=values, node_hints=hints), circuit
            ).payload["out"]
        np.testing.assert_allclose(
            results["compiled"], results["generic"], rtol=1e-7, atol=1e-9
        )


class TestExperimentRegistry:
    def test_all_seventeen_artifacts_registered(self):
        load_all()
        expected = {f"fig{k}" for k in range(1, 10)}
        expected |= {"table2", "table3", "table4", "baseline", "ssta",
                     "charlib", "yield_sram", "yield_dff"}
        assert expected == set(names())

    def test_run_experiment_wraps_result(self, session):
        load_all()
        result = session.run_experiment("fig2", quick=True)
        assert result.experiment == "fig2"
        assert result.seed == session.seed
        assert result.spec.name == "fig2"
        from repro.api.registry import get

        text = get("fig2").report(result.payload)
        assert "Fig. 2" in text

    def test_run_experiment_accepts_overrides(self, session):
        load_all()
        result = session.run_experiment("fig2", polarity="pmos")
        assert result.payload.polarity == "pmos"
        assert dict(result.spec.kwargs)["polarity"] == "pmos"

    def test_unknown_experiment_raises(self, session):
        load_all()
        with pytest.raises(KeyError):
            session.run_experiment("fig99")
