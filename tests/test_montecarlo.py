"""Device-level Monte-Carlo engines: seeding, shapes, statistics."""

import numpy as np
import pytest

from repro.data.cards import (
    bsim_nmos_40nm,
    ground_truth_mismatch_nmos,
    paper_alphas_nmos,
    vs_nmos_40nm,
)
from repro.devices.bsim.mismatch import BSIMMismatch
from repro.devices.vs.statistical import StatisticalVSModel
from repro.stats.montecarlo import (
    golden_sigmas_by_geometry,
    golden_target_samples,
    vs_target_samples,
)

VDD = 0.9


@pytest.fixture()
def mismatch():
    return BSIMMismatch(bsim_nmos_40nm(), ground_truth_mismatch_nmos())


@pytest.fixture()
def stat_model():
    return StatisticalVSModel(vs_nmos_40nm(), paper_alphas_nmos())


class TestTargetSamples:
    def test_sample_shapes(self, mismatch, rng):
        s = golden_target_samples(mismatch, 600.0, 40.0, VDD, 500, rng)
        for target in ("idsat", "log10_ioff", "cgg"):
            assert s.samples[target].shape == (500,)

    def test_seeded_reproducibility(self, mismatch):
        a = golden_target_samples(mismatch, 600.0, 40.0, VDD, 300,
                                  np.random.default_rng(5))
        b = golden_target_samples(mismatch, 600.0, 40.0, VDD, 300,
                                  np.random.default_rng(5))
        np.testing.assert_array_equal(a.samples["idsat"], b.samples["idsat"])

    def test_sigma_uses_ddof1(self, mismatch, rng):
        s = golden_target_samples(mismatch, 600.0, 40.0, VDD, 200, rng)
        manual = float(np.std(s.samples["idsat"], ddof=1))
        assert s.sigma("idsat") == pytest.approx(manual)

    def test_sigma_and_mean_are_memoized(self, stat_model, rng, monkeypatch):
        # Hot loops re-read the same statistic; np.std/np.mean must run
        # once per (stat, target), not once per call.
        import repro.stats.montecarlo as mc_module

        s = vs_target_samples(stat_model, 600.0, 40.0, VDD, 300, rng)
        calls = {"std": 0, "mean": 0}
        real_std, real_mean = np.std, np.mean

        def counting_std(*args, **kwargs):
            calls["std"] += 1
            return real_std(*args, **kwargs)

        def counting_mean(*args, **kwargs):
            calls["mean"] += 1
            return real_mean(*args, **kwargs)

        monkeypatch.setattr(mc_module.np, "std", counting_std)
        monkeypatch.setattr(mc_module.np, "mean", counting_mean)
        first_sigma = s.sigma("idsat")
        first_mean = s.mean("idsat")
        for _ in range(5):
            assert s.sigma("idsat") == first_sigma
            assert s.mean("idsat") == first_mean
        assert calls == {"std": 1, "mean": 1}
        # Distinct targets still compute their own statistic.
        s.sigma("cgg")
        assert calls["std"] == 2

    def test_concat_matches_single_draw(self, stat_model, rng):
        from repro.stats.montecarlo import concat_target_samples

        parts = [
            vs_target_samples(stat_model, 600.0, 40.0, VDD, n, rng)
            for n in (100, 50, 25)
        ]
        merged = concat_target_samples(parts)
        assert merged.n_samples == 175
        np.testing.assert_array_equal(
            merged.samples["idsat"],
            np.concatenate([p.samples["idsat"] for p in parts]),
        )
        with pytest.raises(ValueError, match="geometries"):
            concat_target_samples(
                [parts[0],
                 vs_target_samples(stat_model, 120.0, 40.0, VDD, 10, rng)]
            )

    def test_vs_samples_same_interface(self, stat_model, rng):
        s = vs_target_samples(stat_model, 600.0, 40.0, VDD, 400, rng)
        assert s.w_nm == 600.0
        assert set(s.sigmas()) == {"idsat", "log10_ioff", "cgg"}

    def test_golden_sigmas_by_geometry(self, mismatch, rng):
        geos = ((600.0, 40.0), (120.0, 40.0))
        result = golden_sigmas_by_geometry(mismatch, geos, VDD, 400, rng)
        assert set(result) == set(geos)
        # Smaller device: larger relative Idsat sigma but smaller absolute
        # (less current); leakage sigma is cleanly ordered.
        assert result[(120.0, 40.0)]["log10_ioff"] > result[(600.0, 40.0)][
            "log10_ioff"
        ]


class TestStatisticalConsistency:
    def test_idsat_gaussianish(self, stat_model, rng):
        from repro.stats.distributions import summarize

        s = vs_target_samples(stat_model, 600.0, 40.0, VDD, 5000, rng)
        stats = summarize(s.samples["idsat"])
        assert abs(stats.skewness) < 0.3

    def test_log_ioff_gaussianish_but_raw_ioff_not(self, stat_model, rng):
        from repro.stats.distributions import summarize

        s = vs_target_samples(stat_model, 120.0, 40.0, VDD, 5000, rng)
        log_stats = summarize(s.samples["log10_ioff"])
        raw_stats = summarize(np.power(10.0, s.samples["log10_ioff"]))
        assert abs(log_stats.skewness) < 0.4
        assert raw_stats.skewness > 1.0

    def test_ion_ioff_positively_correlated(self, stat_model, rng):
        # Both driven by VT0: a fast device leaks more.
        s = vs_target_samples(stat_model, 600.0, 40.0, VDD, 5000, rng)
        r = np.corrcoef(s.samples["idsat"], s.samples["log10_ioff"])[0, 1]
        assert r > 0.5
