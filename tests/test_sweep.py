"""The sweep combinator + non-blocking Session futures.

Pins the PR-5 contracts: the sweep axis algebra (dotted paths, zipped
axes, nested-sweep flattening, validation), both point-seed contracts
(legacy ``seed_offset + j`` — what keeps the rewritten experiments
golden-stable — and the nested spawn contract
``SeedSequence(base_seed, (j,))`` / inner shards ``(j, i)``),
bit-identity of sweep output at 1/2/8 workers and across sweep shard
sizes, checkpoint/resume across sweep-point boundaries,
``SweepResult.to_json``/``from_json`` round-tripping numpy payloads,
and the ``RunHandle`` future surface (progress, partial snapshots,
cancellation).
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    DCOp,
    Execution,
    FactoryMap,
    MonteCarlo,
    RunCancelled,
    Session,
    Sweep,
    SweepResult,
    sweep_point_offset,
)

RTOL = 1e-9


@pytest.fixture()
def session(technology) -> Session:
    return Session(technology=technology, seed=20260701)


@dataclass(frozen=True)
class RngWork:
    """Cheap factory-map workload: one normal draw per sample."""

    scale: float = 1.0

    def __call__(self, factory) -> np.ndarray:
        return self.scale * factory.rng.normal(size=factory.n_samples)


@dataclass(frozen=True)
class SlowWork:
    """RngWork with a per-call delay (cancellation tests)."""

    delay_s: float = 0.03

    def __call__(self, factory) -> np.ndarray:
        time.sleep(self.delay_s)
        return factory.rng.normal(size=factory.n_samples)


# ----------------------------------------------------------------------
# Axis algebra + validation.
# ----------------------------------------------------------------------
class TestSweepSpec:
    def test_row_major_point_order_first_axis_slowest(self):
        sweep = Sweep(
            MonteCarlo(n_samples=10),
            over={"w_nm": (300.0, 600.0), "l_nm": (40.0, 60.0, 80.0)},
        )
        assert sweep.shape == (2, 3)
        assert sweep.n_points == 6
        assert sweep.point_values(0) == {"w_nm": 300.0, "l_nm": 40.0}
        assert sweep.point_values(2) == {"w_nm": 300.0, "l_nm": 80.0}
        assert sweep.point_values(3) == {"w_nm": 600.0, "l_nm": 40.0}
        spec = sweep.point_spec(4)
        assert (spec.w_nm, spec.l_nm) == (600.0, 60.0)

    def test_zipped_axis_sets_several_fields(self):
        sweep = Sweep(
            MonteCarlo(n_samples=10),
            over={("w_nm", "l_nm"): ((1500.0, 40.0), (120.0, 45.0))},
        )
        assert sweep.shape == (2,)
        spec = sweep.point_spec(1)
        assert (spec.w_nm, spec.l_nm) == (120.0, 45.0)

    def test_dotted_path_reaches_nested_dataclass(self):
        sweep = Sweep(
            FactoryMap(work=RngWork(1.0), n_samples=8),
            over={"work.scale": (1.0, 2.0)},
        )
        assert sweep.point_spec(1).work.scale == 2.0

    def test_nested_sweeps_flatten_outer_axes_slowest(self):
        inner = Sweep(MonteCarlo(n_samples=10), over={"l_nm": (40.0, 60.0)})
        outer = Sweep(inner, over={"w_nm": (300.0, 600.0)})
        assert outer.shape == (2, 2)
        assert isinstance(outer.spec, MonteCarlo)
        assert outer.point_values(1) == {"w_nm": 300.0, "l_nm": 60.0}

    def test_nested_sweeps_reject_shared_field_paths(self):
        inner = Sweep(MonteCarlo(n_samples=10), over={"w_nm": (100.0, 200.0)})
        with pytest.raises(ValueError, match="twice"):
            Sweep(inner, over={"w_nm": (300.0, 600.0)})

    def test_overlapping_axis_paths_rejected(self):
        """'work' and 'work.scale' cannot both be axes: the broader
        substitution would silently clobber the narrower axis."""
        spec = FactoryMap(work=RngWork(1.0), n_samples=8)
        with pytest.raises(ValueError, match="conflicting"):
            Sweep(spec, over={"work.scale": (1.0, 2.0),
                              "work": (RngWork(3.0), RngWork(4.0))})
        inner = Sweep(spec, over={"work.scale": (1.0, 2.0)})
        with pytest.raises(ValueError, match="conflicting"):
            Sweep(inner, over={"work": (RngWork(3.0),)})

    def test_legacy_points_carry_their_seed_offset(self):
        sweep = Sweep(
            MonteCarlo(n_samples=10, seed_offset=40),
            over={"w_nm": (300.0, 600.0, 900.0)},
            seed_mode="legacy",
        )
        assert [p.seed_offset for p in map(sweep.point_spec, range(3))] == [
            40, 41, 42
        ]
        assert sweep_point_offset(40, 2) == 42

    def test_validation_rejects_bad_inputs(self):
        mc = MonteCarlo(n_samples=10)
        with pytest.raises(ValueError):
            Sweep(mc, over={})
        with pytest.raises(ValueError):
            Sweep(mc, over={"w_nm": ()})
        with pytest.raises(ValueError):
            Sweep(mc, over={"not_a_field": (1.0,)})
        with pytest.raises(ValueError):
            Sweep(mc, over={"w_nm": (-1.0,)})  # point 0 revalidates
        with pytest.raises(ValueError):
            Sweep(mc, over={"w_nm": (300.0,)}, seed_mode="offset")
        with pytest.raises(TypeError):
            Sweep(DCOp(), over={"t": (0.0,)})
        with pytest.raises(ValueError):
            Sweep(mc, over={("w_nm", "l_nm"): ((300.0,),)})
        with pytest.raises(ValueError):
            Sweep(mc, over={"w_nm": (300.0,), ("w_nm", "l_nm"):
                            ((1.0, 2.0),)})
        with pytest.raises(ValueError):
            Sweep(mc, over={"w_nm": (300.0,)},
                  execution=Execution(target_rel_err=0.1))
        with pytest.raises(ValueError):
            Sweep(
                Sweep(mc, over={"l_nm": (40.0,)}, seed_mode="legacy"),
                over={"w_nm": (300.0,)},
            )

    def test_sweep_does_not_take_a_circuit(self, session):
        sweep = Sweep(MonteCarlo(n_samples=4), over={"w_nm": (300.0,)})
        with pytest.raises(ValueError, match="circuit"):
            session.run(sweep, circuit=object())


# ----------------------------------------------------------------------
# Seed contracts.
# ----------------------------------------------------------------------
class TestSeedContracts:
    def test_legacy_points_match_hand_rolled_offsets(self, session):
        sweep = Sweep(
            MonteCarlo(n_samples=60, seed_offset=7),
            over={"w_nm": (300.0, 600.0, 1500.0)},
            seed_mode="legacy",
        )
        result = session.run(sweep)
        for j, w in enumerate((300.0, 600.0, 1500.0)):
            direct = session.run(
                MonteCarlo(n_samples=60, w_nm=w, seed_offset=7 + j)
            )
            np.testing.assert_array_equal(
                result.points[j].payload.samples["idsat"],
                direct.payload.samples["idsat"],
            )
            assert result.points[j].seed == direct.seed

    def test_spawn_points_follow_nested_seed_sequence(self, session):
        from repro.stats.montecarlo import target_samples

        widths = (300.0, 600.0)
        result = session.run(Sweep(
            MonteCarlo(n_samples=40, seed_offset=5), over={"w_nm": widths}
        ))
        base = session.seed + 5
        for j, w in enumerate(widths):
            rng = np.random.Generator(np.random.PCG64(
                np.random.SeedSequence(base, spawn_key=(j,))
            ))
            manual = target_samples(
                session.technology["nmos"], "vs", w, 40.0,
                session.technology.vdd, 40, rng,
            )
            np.testing.assert_array_equal(
                result.points[j].payload.samples["idsat"],
                manual.samples["idsat"],
            )
            assert result.points[j].meta["spawn_key"] == (j,)

    def test_spawn_inner_shards_use_point_prefixed_streams(self, session):
        """Inner sharded runs draw shard *i* from spawn_key=(j, i)."""
        from repro.stats.montecarlo import target_samples

        result = session.run(Sweep(
            MonteCarlo(n_samples=50, seed_offset=3,
                       execution=Execution(shard_size=20)),
            over={"w_nm": (300.0, 600.0)},
        ))
        base = session.seed + 3
        for j, w in enumerate((300.0, 600.0)):
            chunks = []
            for i, n in enumerate((20, 20, 10)):
                rng = np.random.Generator(np.random.PCG64(
                    np.random.SeedSequence(base, spawn_key=(j, i))
                ))
                chunks.append(target_samples(
                    session.technology["nmos"], "vs", w, 40.0,
                    session.technology.vdd, n, rng,
                ).samples["idsat"])
            np.testing.assert_array_equal(
                result.points[j].payload.samples["idsat"],
                np.concatenate(chunks),
            )

    def test_single_point_sweep_is_the_identity(self, session):
        spec = MonteCarlo(n_samples=30, w_nm=600.0, seed_offset=9)
        for seed_mode in ("spawn", "legacy"):
            sweep = session.run(
                Sweep(spec, over={"w_nm": (600.0,)}, seed_mode=seed_mode)
            )
            direct = session.run(spec)
            np.testing.assert_array_equal(
                sweep.points[0].payload.samples["idsat"],
                direct.payload.samples["idsat"],
            )

    def test_factory_map_legacy_matches_map_mc(self, session):
        """FactoryMap sweep points replay the legacy map_mc draws."""
        sweep = session.run(Sweep(
            FactoryMap(work=RngWork(1.0), n_samples=32, seed_offset=11),
            over={"work.scale": (1.0, 3.0)},
            seed_mode="legacy",
        ))
        for j, scale in enumerate((1.0, 3.0)):
            legacy, _ = session.map_mc(RngWork(scale), 32,
                                       seed_offset=11 + j)
            np.testing.assert_array_equal(sweep.points[j].payload, legacy)


# ----------------------------------------------------------------------
# Scheduling invariance (the acceptance criterion).
# ----------------------------------------------------------------------
class TestSchedulingInvariance:
    WORKER_COUNTS = (1, 2, 8)

    def _sweep(self, execution=None) -> Sweep:
        return Sweep(
            MonteCarlo(n_samples=80, seed_offset=2),
            over={"w_nm": (300.0, 600.0, 900.0, 1500.0)},
            execution=execution,
        )

    def test_bit_identical_at_1_2_8_workers(self, session):
        serial = session.run(self._sweep())
        for workers in self.WORKER_COUNTS:
            parallel = Session(technology=session.technology,
                               seed=session.seed, executor=workers)
            try:
                swept = parallel.run(self._sweep())
            finally:
                parallel.close()
            assert swept.runtime is not None
            assert swept.runtime.workers == workers
            for a, b in zip(serial.points, swept.points):
                np.testing.assert_array_equal(
                    a.payload.samples["idsat"], b.payload.samples["idsat"]
                )

    def test_bit_identical_across_sweep_shard_sizes(self, session):
        reference = session.run(self._sweep())
        for shard_size in (1, 2, 3, 4):
            swept = session.run(
                self._sweep(Execution(shard_size=shard_size))
            )
            assert swept.runtime.shard_size == shard_size
            for a, b in zip(reference.points, swept.points):
                np.testing.assert_array_equal(
                    a.payload.samples["idsat"], b.payload.samples["idsat"]
                )

    def test_session_sample_shard_size_is_not_points_per_shard(
        self, technology
    ):
        """--shard-size is sample granularity; a sweep inheriting the
        session default must still plan one point per shard, not fold
        the whole grid into one serialized shard."""
        parallel = Session(technology=technology, seed=5, executor=2,
                           shard_size=512)
        try:
            swept = parallel.run(self._sweep())
        finally:
            parallel.close()
        assert swept.runtime.shard_size == 1
        assert swept.runtime.n_shards == 4

    def test_session_default_is_absorbed_by_the_sweep_not_the_points(
        self, technology
    ):
        """--workers must parallelize the sweep without re-sharding the
        inner runs: every point keeps its serial legacy stream."""
        serial = Session(technology=technology, seed=77)
        parallel = Session(technology=technology, seed=77, executor=2)
        try:
            sweep = Sweep(
                MonteCarlo(n_samples=40, seed_offset=4),
                over={"w_nm": (300.0, 600.0)},
                seed_mode="legacy",
            )
            swept = parallel.run(sweep)
            assert swept.runtime is not None  # the sweep fanned out...
            for j, point in enumerate(swept.points):
                assert point.runtime is None  # ...the points did not
                direct = serial.run(
                    MonteCarlo(n_samples=40, w_nm=(300.0, 600.0)[j],
                               seed_offset=4 + j)
                )
                np.testing.assert_array_equal(
                    point.payload.samples["idsat"],
                    direct.payload.samples["idsat"],
                )
        finally:
            parallel.close()
            serial.close()


# ----------------------------------------------------------------------
# Checkpoint/resume across sweep-point boundaries.
# ----------------------------------------------------------------------
class TestSweepCheckpoint:
    def _sweep(self, execution) -> Sweep:
        return Sweep(
            MonteCarlo(n_samples=50, seed_offset=6),
            over={"w_nm": (300.0, 600.0, 900.0, 1500.0)},
            execution=execution,
        )

    def test_resume_is_bit_identical_to_uninterrupted(self, session,
                                                      tmp_path):
        prefix = str(tmp_path / "sweep.ckpt")
        uninterrupted = session.run(self._sweep(Execution(shard_size=1)))

        # Phase 1: point cap stops the sweep after 2 of 4 points,
        # leaving a checkpoint at the wave boundary.
        capped = session.run(self._sweep(Execution(
            shard_size=1, wave_size=1, max_samples=2, checkpoint=prefix,
        )))
        assert len(capped.points) == 2
        assert capped.runtime.stopped_early
        assert capped.meta["stop_reason"] == capped.runtime.stop_reason
        files = list(Path(tmp_path).glob("sweep.ckpt.*.ckpt"))
        assert len(files) == 1

        # Phase 2: the same sweep without the cap resumes mid-grid.
        resumed = session.run(self._sweep(Execution(
            shard_size=1, wave_size=1, checkpoint=prefix,
        )))
        assert resumed.runtime.resumed_shards == 2
        assert resumed.complete
        for a, b in zip(uninterrupted.points, resumed.points):
            np.testing.assert_array_equal(
                a.payload.samples["idsat"], b.payload.samples["idsat"]
            )

    def test_sweep_spec_discriminates_checkpoints(self, session, tmp_path):
        """Two different sweeps sharing a prefix land in distinct files."""
        prefix = str(tmp_path / "shared.ckpt")
        session.run(self._sweep(Execution(shard_size=1, checkpoint=prefix)))
        other = Sweep(
            MonteCarlo(n_samples=50, seed_offset=6, polarity="pmos"),
            over={"w_nm": (300.0, 600.0, 900.0, 1500.0)},
            execution=Execution(shard_size=1, checkpoint=prefix),
        )
        session.run(other)
        assert len(list(Path(tmp_path).glob("shared.ckpt.*.ckpt"))) == 2


# ----------------------------------------------------------------------
# SweepResult envelope.
# ----------------------------------------------------------------------
class TestSweepResult:
    def test_json_round_trip_with_numpy_payloads(self, session):
        result = session.run(Sweep(
            FactoryMap(work=RngWork(1.0), n_samples=16, seed_offset=1),
            over={"work.scale": (1.0, 2.0), "model": ("vs", "bsim")},
            seed_mode="legacy",
        ))
        back = SweepResult.from_json(result.to_json())
        assert isinstance(back.spec, Sweep)
        assert back.spec.seed_mode == "legacy"
        assert back.shape == (2, 2)
        assert back.seed == result.seed
        for a, b in zip(result.points, back.points):
            assert isinstance(b.payload, np.ndarray)
            np.testing.assert_array_equal(a.payload, b.payload)
            assert b.spec == a.spec
        # The decoded spec is live: it re-enumerates its own grid.
        assert back.coords(3) == {"work.scale": 2.0, "model": "bsim"}

    def test_round_trip_preserves_non_finite_values(self, session):
        result = session.run(Sweep(
            MonteCarlo(n_samples=12, seed_offset=2),
            over={"w_nm": (300.0,)},
        ))
        # Graft a NaN/inf payload through the meta channel.
        result.points[0].meta["weird"] = np.array([np.nan, np.inf, 1.0])
        back = SweepResult.from_json(result.to_json())
        np.testing.assert_array_equal(
            back.points[0].meta["weird"],
            np.array([np.nan, np.inf, 1.0]),
        )

    def test_grid_and_point_lookup(self, session):
        result = session.run(Sweep(
            MonteCarlo(n_samples=30, seed_offset=3),
            over={"w_nm": (300.0, 600.0)},
        ))
        sigma = result.grid(lambda p: p.payload.sigma("idsat"))
        assert sigma.shape == (2,)
        point = result.point(w_nm=600.0)
        assert point.payload.sigma("idsat") == pytest.approx(
            sigma[1], rel=RTOL
        )
        with pytest.raises(KeyError):
            result.point(w_nm=1.0)
        assert result.complete

    def test_from_json_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            SweepResult.from_json('{"hello": 1}')

    def test_codec_preserves_array_dtypes(self):
        from repro.api.serialize import dumps, loads

        for array in (
            np.array([1.5, np.nan, -np.inf]),
            np.arange(6, dtype=np.int32).reshape(2, 3),
            np.array([1 + 2j, 3 - 4j], dtype=np.complex64),
            np.array([1 + 2j], dtype=np.complex128),
        ):
            back = loads(dumps(array))
            assert back.dtype == array.dtype
            np.testing.assert_array_equal(back, array)


# ----------------------------------------------------------------------
# Futures.
# ----------------------------------------------------------------------
class TestFutures:
    def test_submit_result_equals_run(self, session):
        spec = MonteCarlo(n_samples=40, seed_offset=8)
        handle = session.submit(spec)
        blocking = session.run(spec)
        future = handle.result()
        np.testing.assert_array_equal(
            future.payload.samples["idsat"],
            blocking.payload.samples["idsat"],
        )
        assert handle.done() and not handle.running()
        progress = handle.progress()
        assert progress.done and progress.fraction == 1.0

    def test_sweep_progress_counts_points(self, session):
        sweep = Sweep(MonteCarlo(n_samples=20, seed_offset=1),
                      over={"w_nm": (300.0, 600.0, 900.0)})
        handle = session.submit(sweep)
        result = handle.result()
        assert len(result.points) == 3
        progress = handle.progress()
        assert (progress.completed, progress.total) == (3, 3)
        assert progress.unit == "points"

    def test_sharded_partial_snapshots_streamed_state(self, session):
        handle = session.submit(MonteCarlo(
            n_samples=300, seed_offset=2,
            execution=Execution(shard_size=100),
        ))
        result = handle.result(timeout=120.0)
        partial = handle.partial()
        assert partial["n_samples"] == 300
        assert partial["sigmas"]["idsat"] == pytest.approx(
            result.meta["streamed_sigmas"]["idsat"], rel=RTOL
        )

    def test_cancel_mid_sweep_raises_with_partial(self, session):
        sweep = Sweep(
            FactoryMap(work=SlowWork(0.03), n_samples=4),
            over={"model": tuple(["vs"] * 30)},
        )
        handle = session.submit(sweep)
        deadline = time.monotonic() + 30.0
        while handle.progress().completed < 1:
            assert time.monotonic() < deadline, "sweep never progressed"
            time.sleep(0.005)
        assert handle.cancel()
        with pytest.raises(RunCancelled) as excinfo:
            handle.result(timeout=60.0)
        truncated = excinfo.value.partial
        assert truncated is not None
        assert truncated.meta["stop_reason"] == "cancelled"
        assert 1 <= len(truncated.points) < 30
        assert not truncated.complete
        # partial() agrees with the truncated envelope.
        assert len(handle.partial()["points"]) == len(truncated.points)

    def test_cancel_after_completion_is_a_no_op(self, session):
        handle = session.submit(MonteCarlo(n_samples=10))
        handle.result()
        assert handle.cancel() is False
        # Result is still retrievable, not RunCancelled.
        assert handle.result().n_samples == 10

    def test_exceptions_propagate_through_result(self, session):
        handle = session.submit(DCOp())  # circuit-level spec, no circuit
        with pytest.raises(ValueError, match="requires a circuit"):
            handle.result()
        assert handle.done()

    def test_result_timeout(self, session):
        sweep = Sweep(
            FactoryMap(work=SlowWork(0.05), n_samples=4),
            over={"model": tuple(["vs"] * 10)},
        )
        handle = session.submit(sweep)
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.01)
        handle.result(timeout=60.0)  # drains cleanly afterwards


# ----------------------------------------------------------------------
# Experiment hygiene: the offset arithmetic lives in ONE place.
# ----------------------------------------------------------------------
class TestSeedArithmeticOwnership:
    def test_no_experiment_module_hand_rolls_point_offsets(self):
        """ROADMAP PR-5: per-point streams come from the sweep contract
        (Sweep seed modes or sweep_point_offset), never inline
        ``base + k`` arithmetic."""
        import repro.experiments as experiments

        root = Path(experiments.__file__).parent
        pattern = re.compile(r"seed_offset\s*=\s*\d+\s*[+-]")
        offenders = [
            path.name
            for path in sorted(root.glob("*.py"))
            if pattern.search(path.read_text())
        ]
        assert offenders == []
