"""Golden regression tests for the fig. 3-9 experiment outputs.

Each experiment runs at a reduced Monte-Carlo count with its fixed seed
(the experiments seed themselves from ``EXPERIMENT_SEED``); a handful of
scalar features per figure is compared against committed golden values.
The goldens pin the exact numeric behaviour of the full stack — device
sampling, BPV characterization, the batched circuit engine, and the
statistics layer — so a refactor that silently shifts paper numbers
fails here instead of in a reviewer's eyeball diff.

Regenerate after an *intentional* numeric change with::

    PYTHONPATH=src python tests/test_golden_figures.py

and paste the printed dict over ``GOLDEN``.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig3_idsat_mismatch,
    fig4_scatter_ellipses,
    fig5_inv_delay,
    fig6_leakage_freq,
    fig7_nand2_vdd,
    fig8_dff_setup,
    fig9_sram_snm,
)
from repro.cells.inverter import FIG5_SIZES

#: Relative tolerance for smooth statistics.  Goldens were generated on
#: this repo's reference toolchain; the slack absorbs BLAS/LAPACK
#: rounding differences across builds without letting real changes slip.
RTOL = 1e-6
#: Extra absolute slack for bisection-measured times (fig. 8): a
#: last-bit flip of a pass/fail transient shifts the boundary by one
#: bisection cell.
SETUP_ATOL = 1.0e-12


def features_fig3():
    result = fig3_idsat_mismatch.run(widths_nm=(150.0, 600.0), n_samples=400)
    return {
        "total_mc": list(result.total_mc),
        "total_linear": list(result.total_linear),
        "vt0_contribution": list(result.contributions["vt0"]),
    }


def features_fig4():
    result = fig4_scatter_ellipses.run(n_samples=300)
    ion_g, logioff_g = result.golden_cloud
    ion_v, logioff_v = result.vs_cloud
    return {
        "golden_ion_mean": float(np.mean(ion_g)),
        "golden_logioff_mean": float(np.mean(logioff_g)),
        "vs_ion_std": float(np.std(ion_v, ddof=1)),
        "vs_logioff_std": float(np.std(logioff_v, ddof=1)),
        "cross_coverage": [
            result.cross_coverage[k] for k in sorted(result.cross_coverage)
        ],
    }


def features_fig5():
    result = fig5_inv_delay.run(n_samples=8, sizes=(FIG5_SIZES[1],))
    case = result.cases[0]
    return {
        "vs_mean": case.vs_summary.mean,
        "vs_std": case.vs_summary.std,
        "golden_mean": case.golden_summary.mean,
        "golden_std": case.golden_summary.std,
    }


def features_fig6():
    result = fig6_leakage_freq.run(n_samples=24)
    out = {}
    for model, cloud in sorted(result.clouds.items()):
        out[f"{model}_leak_mean"] = float(np.mean(cloud.leakage))
        out[f"{model}_freq_mean"] = float(np.mean(cloud.frequency))
    return out


def features_fig7():
    result = fig7_nand2_vdd.run(n_samples=8, vdds=(0.9,))
    case = result.cases[0]
    return {
        "vs_mean": case.vs_summary.mean,
        "vs_std": case.vs_summary.std,
        "golden_mean": case.golden_summary.mean,
    }


def features_fig8():
    result = fig8_dff_setup.run(n_samples=8, n_iterations=6)
    return {
        "setup_vs": list(result.setup_vs),
        "setup_golden": list(result.setup_golden),
    }


def features_fig9():
    result = fig9_sram_snm.run(n_samples=8)
    out = {}
    for case in result.cases:
        out[f"{case.mode}_vs_mean"] = case.vs_summary.mean
        out[f"{case.mode}_golden_mean"] = case.golden_summary.mean
        out[f"{case.mode}_vs_std"] = case.vs_summary.std
    return out


FEATURES = {
    "fig3": features_fig3,
    "fig4": features_fig4,
    "fig5": features_fig5,
    "fig6": features_fig6,
    "fig7": features_fig7,
    "fig8": features_fig8,
    "fig9": features_fig9,
}

GOLDEN = {
    "fig3": {
        "total_linear": [0.08510690036667924, 0.04255345018333983],
        "total_mc": [0.08300921974043016, 0.04444324096778332],
        "vt0_contribution": [0.061354152480288304, 0.030677076240144152],
    },
    "fig4": {
        "cross_coverage": [
            0.35333333333333333, 0.8666666666666667, 0.9966666666666667,
        ],
        "golden_ion_mean": 0.0005276062463780547,
        "golden_logioff_mean": -9.036310375116466,
        "vs_ion_std": 2.2165624143395315e-05,
        "vs_logioff_std": 0.16703821079986564,
    },
    "fig5": {
        "golden_mean": 5.888979430059293e-12,
        "golden_std": 2.9359132970197614e-13,
        "vs_mean": 5.503854606780897e-12,
        "vs_std": 3.8170431561849564e-13,
    },
    "fig6": {
        "bsim_freq_mean": 177013856804.79025,
        "bsim_leak_mean": 5.653303537523245e-10,
        "vs_freq_mean": 180021716392.54428,
        "vs_leak_mean": 4.1651383567193185e-10,
    },
    "fig7": {
        "golden_mean": 5.04973157750805e-12,
        "vs_mean": 4.741936164161294e-12,
        "vs_std": 2.1330993758314182e-13,
    },
    "fig8": {
        "setup_golden": [
            3.1882812499999996e-11, 3.9257812499999996e-11,
            3.37265625e-11, 1.8976562499999998e-11,
            4.0179687499999995e-11, 2.91171875e-11,
            1.71328125e-11, 1.8976562499999998e-11,
        ],
        "setup_vs": [
            1.80546875e-11, 1.80546875e-11, 2.54296875e-11,
            1.9898437499999997e-11, 2.17421875e-11,
            1.8976562499999998e-11, 1.71328125e-11, 3.00390625e-11,
        ],
    },
    "fig9": {
        "hold_golden_mean": 0.3288293838500977,
        "hold_vs_mean": 0.31722593307495117,
        "hold_vs_std": 0.01547947903298617,
        "read_golden_mean": 0.1355412483215332,
        "read_vs_mean": 0.1162550926208496,
        "read_vs_std": 0.018636592721770942,
    },
}


@pytest.mark.parametrize("figure", sorted(FEATURES))
def test_golden(figure):
    assert figure in GOLDEN, f"no golden committed for {figure}"
    actual = FEATURES[figure]()
    expected = GOLDEN[figure]
    assert sorted(actual) == sorted(expected)
    for key, want in expected.items():
        atol = SETUP_ATOL if figure == "fig8" else 0.0
        np.testing.assert_allclose(
            np.asarray(actual[key], dtype=float),
            np.asarray(want, dtype=float),
            rtol=RTOL,
            atol=atol,
            err_msg=f"{figure}:{key}",
        )


if __name__ == "__main__":
    import pprint

    regenerated = {name: fn() for name, fn in sorted(FEATURES.items())}
    print("GOLDEN = ", end="")
    pprint.pprint(regenerated)
