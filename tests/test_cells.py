"""Benchmark cells: INV, NAND2, DFF, SRAM behaviour at nominal and small MC."""

import numpy as np
import pytest

from repro.cells import (
    DFFSpec,
    InverterSpec,
    MonteCarloDeviceFactory,
    Nand2Spec,
    NominalDeviceFactory,
    SRAMSpec,
    butterfly_curves,
    dff_hold_time,
    dff_setup_time,
    inverter_delays,
    nand2_delays,
    sram_snm,
)

VDD = 0.9


@pytest.fixture(scope="module")
def technology_module(technology):
    # Alias onto the session-wide characterized technology.
    return technology


@pytest.fixture(scope="module")
def nominal_vs(technology_module):
    return NominalDeviceFactory(technology_module, "vs")


@pytest.fixture(scope="module")
def nominal_bsim(technology_module):
    return NominalDeviceFactory(technology_module, "bsim")


class TestInverter:
    def test_nominal_delay_40nm_class(self, nominal_vs):
        d = inverter_delays(nominal_vs, InverterSpec(600.0, 300.0), VDD)
        tphl = float(d["tphl"].delay)
        tplh = float(d["tplh"].delay)
        # Paper Fig. 5: FO3 delays in the 4-9 ps decade.
        assert 1e-12 < tphl < 20e-12
        assert 1e-12 < tplh < 20e-12

    def test_bigger_cell_similar_delay(self, nominal_vs):
        # FO3 loading scales with the cell: delay roughly size-independent.
        d1 = inverter_delays(nominal_vs, InverterSpec(300.0, 150.0), VDD)
        d4 = inverter_delays(nominal_vs, InverterSpec(1200.0, 600.0), VDD)
        assert float(d4["tphl"].delay) == pytest.approx(
            float(d1["tphl"].delay), rel=0.5
        )

    def test_vs_and_bsim_delays_close(self, nominal_vs, nominal_bsim):
        dv = inverter_delays(nominal_vs, InverterSpec(600.0, 300.0), VDD)
        db = inverter_delays(nominal_bsim, InverterSpec(600.0, 300.0), VDD)
        assert float(dv["tphl"].delay) == pytest.approx(
            float(db["tphl"].delay), rel=0.25
        )

    def test_monte_carlo_delay_spread(self, technology_module):
        mc = MonteCarloDeviceFactory(technology_module, 60, model="vs", seed=5)
        d = inverter_delays(mc, InverterSpec(300.0, 150.0), VDD)
        delays = d["tphl"].delay
        assert delays.shape == (60,)
        assert np.all(np.isfinite(delays))
        rel_spread = np.std(delays, ddof=1) / np.mean(delays)
        assert 0.01 < rel_spread < 0.3


class TestNand2:
    def test_delay_grows_as_vdd_drops(self, nominal_vs):
        delays = []
        for vdd in (0.9, 0.7, 0.55):
            d = nand2_delays(nominal_vs, Nand2Spec(), vdd)
            delays.append(float(d["tphl"].delay))
        assert delays[0] < delays[1] < delays[2]
        # Fig. 7: roughly 3-4x slower at 0.55 V than at 0.9 V.
        assert delays[2] / delays[0] > 2.0


class TestDFF:
    def test_nominal_setup_time_positive(self, nominal_vs):
        setup = dff_setup_time(nominal_vs, DFFSpec(), VDD, n_iterations=6)
        assert 1e-12 < float(setup) < 60e-12

    def test_nominal_hold_time_bracketed(self, nominal_vs):
        hold = dff_hold_time(nominal_vs, DFFSpec(), VDD, n_iterations=6)
        # Hold boundary lies inside the bisection window and is shorter
        # than the whole clock edge by construction.
        assert -30e-12 < float(hold) < 40e-12

    def test_setup_plus_hold_window_positive(self, nominal_vs):
        setup = dff_setup_time(nominal_vs, DFFSpec(), VDD, n_iterations=6)
        hold = dff_hold_time(nominal_vs, DFFSpec(), VDD, n_iterations=6)
        # The data-stability window (Eq. 11-12 context) must be nonempty.
        assert float(setup) + float(hold) > 0.0

    def test_mc_setup_spread(self, technology_module):
        mc = MonteCarloDeviceFactory(technology_module, 16, model="vs", seed=9)
        setup = dff_setup_time(mc, DFFSpec(), VDD, n_iterations=6)
        assert setup.shape == (16,)
        finite = np.isfinite(setup)
        assert finite.sum() >= 14  # allow a stray bracket failure
        assert np.std(setup[finite], ddof=1) > 0.0


class TestSRAM:
    def test_butterfly_shapes(self, nominal_vs):
        sweep, a, b = butterfly_curves(nominal_vs, SRAMSpec(), VDD, "hold",
                                       n_points=41)
        assert sweep.shape == (41,)
        assert a.shape[0] == 41
        # Transfer curves fall from ~Vdd to ~0.
        assert a[0] > 0.8 * VDD
        assert a[-1] < 0.2 * VDD

    def test_read_snm_lower_than_hold(self, nominal_vs):
        read = float(sram_snm(nominal_vs, SRAMSpec(), VDD, "read"))
        hold = float(sram_snm(nominal_vs, SRAMSpec(), VDD, "hold"))
        assert 0.02 < read < hold < 0.45

    def test_hold_snm_40nm_class(self, nominal_vs):
        hold = float(sram_snm(nominal_vs, SRAMSpec(), VDD, "hold"))
        # Paper Fig. 9e: HOLD SNM around 0.26-0.36 V.
        assert 0.2 < hold < 0.45

    def test_vs_and_bsim_snm_close(self, nominal_vs, nominal_bsim):
        for mode in ("read", "hold"):
            v = float(sram_snm(nominal_vs, SRAMSpec(), VDD, mode))
            b = float(sram_snm(nominal_bsim, SRAMSpec(), VDD, mode))
            assert v == pytest.approx(b, abs=0.03)

    def test_mc_snm_spread(self, technology_module):
        mc = MonteCarloDeviceFactory(technology_module, 80, model="vs", seed=11)
        snm = sram_snm(mc, SRAMSpec(), VDD, "read")
        assert snm.shape == (80,)
        assert np.std(snm, ddof=1) > 0.003  # read SNM is variation-sensitive

    def test_mode_validation(self, nominal_vs):
        with pytest.raises(ValueError):
            butterfly_curves(nominal_vs, SRAMSpec(), VDD, "write")


class TestFactories:
    def test_nominal_factory_model_validation(self, technology_module):
        with pytest.raises(ValueError):
            NominalDeviceFactory(technology_module, "psp")

    def test_mc_factory_batch_shape(self, technology_module):
        mc = MonteCarloDeviceFactory(technology_module, 12, model="bsim", seed=1)
        assert mc.batch_shape == (12,)
        device = mc("nmos", 300.0, 40.0)
        assert np.asarray(device.params.vth0).shape == (12,)

    def test_mc_factory_instances_independent(self, technology_module):
        mc = MonteCarloDeviceFactory(technology_module, 30, model="vs", seed=2)
        d1 = mc("nmos", 300.0, 40.0)
        d2 = mc("nmos", 300.0, 40.0)
        assert not np.allclose(
            np.asarray(d1.params.vt0), np.asarray(d2.params.vt0)
        )
