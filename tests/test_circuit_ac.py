"""AC analysis: RC analytics, amplifier gain, batching."""

import numpy as np
import pytest

from repro.circuit import Circuit, GROUND, DC, ac_analysis
from repro.data.cards import vs_nmos_40nm, vs_pmos_40nm
from repro.devices.vs.model import VSDevice


class TestRCLowpass:
    def build(self, r=1e3, c=1e-12):
        ckt = Circuit()
        ckt.add_vsource("in", GROUND, DC(0.0), name="VIN")
        ckt.add_resistor("in", "out", r)
        ckt.add_capacitor("out", GROUND, c)
        return ckt

    def test_transfer_function(self):
        r, c = 1e3, 1e-12
        f3db = 1.0 / (2.0 * np.pi * r * c)
        freqs = np.array([f3db / 100.0, f3db, f3db * 100.0])
        ckt = self.build(r, c)
        res = ac_analysis(ckt, freqs, ac_sources=["VIN"])
        mag = np.abs(res["out"])
        assert mag[0] == pytest.approx(1.0, abs=1e-3)
        assert mag[1] == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-3)
        assert mag[2] == pytest.approx(0.01, rel=0.05)

    def test_phase_at_corner(self):
        r, c = 1e3, 1e-12
        f3db = 1.0 / (2.0 * np.pi * r * c)
        ckt = self.build(r, c)
        res = ac_analysis(ckt, np.array([f3db]), ac_sources=["VIN"])
        phase = np.angle(res["out"][0])
        assert phase == pytest.approx(-np.pi / 4.0, rel=1e-3)

    def test_magnitude_db_helper(self):
        ckt = self.build()
        res = ac_analysis(ckt, np.array([1.0]), ac_sources=["VIN"])
        assert res.magnitude_db("out")[0] == pytest.approx(0.0, abs=0.01)

    def test_custom_amplitude(self):
        ckt = self.build()
        res = ac_analysis(ckt, np.array([1.0]), ac_sources=["VIN"],
                          amplitudes={"VIN": 0.5})
        assert np.abs(res["out"][0]) == pytest.approx(0.5, abs=1e-3)

    def test_validation(self):
        ckt = self.build()
        with pytest.raises(ValueError):
            ac_analysis(ckt, [], ac_sources=["VIN"])
        with pytest.raises(ValueError):
            ac_analysis(ckt, [1.0], ac_sources=[])
        with pytest.raises(ValueError):
            ac_analysis(ckt, [-5.0], ac_sources=["VIN"])


class TestInverterAC:
    def build(self, vin_bias, batch_vt0=None):
        card = vs_nmos_40nm(300.0, 40.0)
        if batch_vt0 is not None:
            card = card.replace(vt0=batch_vt0)
        ckt = Circuit()
        ckt.add_vsource("vdd", GROUND, DC(0.9), name="VDD")
        ckt.add_vsource("in", GROUND, DC(vin_bias), name="VIN")
        ckt.add_mosfet(VSDevice(vs_pmos_40nm(600.0, 40.0)), d="out", g="in",
                       s="vdd", name="MP")
        ckt.add_mosfet(VSDevice(card), d="out", g="in", s=GROUND, name="MN")
        ckt.add_capacitor("out", GROUND, 5e-15, name="CL")
        return ckt

    def test_gain_at_switching_threshold(self):
        # Biased mid-transition, the inverter is a high-gain amplifier.
        ckt = self.build(0.42)
        res = ac_analysis(ckt, np.array([1e6]), ac_sources=["VIN"])
        gain = np.abs(res["out"][0])
        assert gain > 3.0

    def test_gain_rolls_off(self):
        ckt = self.build(0.42)
        res = ac_analysis(ckt, np.array([1e6, 1e12]), ac_sources=["VIN"])
        assert np.abs(res["out"][1]) < np.abs(res["out"][0])

    def test_no_gain_at_rails(self):
        ckt = self.build(0.0)
        res = ac_analysis(ckt, np.array([1e6]), ac_sources=["VIN"])
        # Output stuck at vdd: tiny small-signal gain (only overlap feed).
        assert np.abs(res["out"][0]) < 0.5

    def test_batched_ac(self):
        vt0 = np.array([0.38, 0.42, 0.46])
        ckt = self.build(0.42, batch_vt0=vt0)
        res = ac_analysis(ckt, np.array([1e6]), ac_sources=["VIN"])
        gains = np.abs(res["out"][0])
        assert gains.shape == (3,)
        assert not np.allclose(gains, gains[0])
